//! The C type grammar used throughout the pipeline.
//!
//! This is the "canonical form" of C types that the Cabs-to-Ail desugaring
//! normalises declarators into (§5.1 of the paper): a first-class tree of
//! [`Ctype`] values, with struct/union types referred to by [`TagId`] into a
//! separate [`crate::layout::TagRegistry`] so recursive types are representable
//! without reference cycles.

use std::fmt;

use crate::ident::Ident;

/// Identifier of a struct or union definition in a [`crate::layout::TagRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TagId(pub u32);

impl fmt::Display for TagId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag{}", self.0)
    }
}

/// The standard integer types (ISO C11 6.2.5), including `_Bool` and the
/// enumerated-type placeholder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IntegerType {
    /// `_Bool`.
    Bool,
    /// Plain `char` (signedness is implementation-defined; see
    /// [`crate::env::ImplEnv::char_is_signed`]).
    Char,
    /// `signed char`.
    SChar,
    /// `unsigned char`.
    UChar,
    /// `short` / `signed short`.
    Short,
    /// `unsigned short`.
    UShort,
    /// `int` / `signed int`.
    Int,
    /// `unsigned int`.
    UInt,
    /// `long` / `signed long`.
    Long,
    /// `unsigned long`.
    ULong,
    /// `long long` / `signed long long`.
    LongLong,
    /// `unsigned long long`.
    ULongLong,
    /// An enumerated type; its compatible implementation-defined integer type
    /// is `int` in this implementation (a common choice).
    Enum,
    /// `size_t` (an unsigned type whose width is implementation-defined).
    SizeT,
    /// `ptrdiff_t` (a signed type whose width is implementation-defined).
    PtrdiffT,
    /// `intptr_t`.
    IntptrT,
    /// `uintptr_t`.
    UintptrT,
}

impl IntegerType {
    /// Whether values of the type are signed, given the implementation's
    /// choice for plain `char`.
    pub fn is_signed(self, char_is_signed: bool) -> bool {
        use IntegerType::*;
        match self {
            Bool | UChar | UShort | UInt | ULong | ULongLong | SizeT | UintptrT => false,
            SChar | Short | Int | Long | LongLong | Enum | PtrdiffT | IntptrT => true,
            Char => char_is_signed,
        }
    }

    /// The conversion rank of the type (ISO C11 6.3.1.1p1). Larger is higher.
    pub fn rank(self) -> u8 {
        use IntegerType::*;
        match self {
            Bool => 0,
            Char | SChar | UChar => 1,
            Short | UShort => 2,
            Int | UInt | Enum => 3,
            Long | ULong | SizeT | PtrdiffT | IntptrT | UintptrT => 4,
            LongLong | ULongLong => 5,
        }
    }

    /// The unsigned integer type with the same rank, used by the usual
    /// arithmetic conversions.
    pub fn to_unsigned(self) -> IntegerType {
        use IntegerType::*;
        match self {
            Bool => Bool,
            Char | SChar | UChar => UChar,
            Short | UShort => UShort,
            Int | UInt | Enum => UInt,
            Long | ULong => ULong,
            LongLong | ULongLong => ULongLong,
            SizeT => SizeT,
            PtrdiffT | IntptrT => UintptrT,
            UintptrT => UintptrT,
        }
    }

    /// All integer types, useful for exhaustive property tests.
    pub fn all() -> &'static [IntegerType] {
        use IntegerType::*;
        &[
            Bool, Char, SChar, UChar, Short, UShort, Int, UInt, Long, ULong, LongLong, ULongLong,
            Enum, SizeT, PtrdiffT, IntptrT, UintptrT,
        ]
    }
}

impl fmt::Display for IntegerType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use IntegerType::*;
        let s = match self {
            Bool => "_Bool",
            Char => "char",
            SChar => "signed char",
            UChar => "unsigned char",
            Short => "short",
            UShort => "unsigned short",
            Int => "int",
            UInt => "unsigned int",
            Long => "long",
            ULong => "unsigned long",
            LongLong => "long long",
            ULongLong => "unsigned long long",
            Enum => "enum",
            SizeT => "size_t",
            PtrdiffT => "ptrdiff_t",
            IntptrT => "intptr_t",
            UintptrT => "uintptr_t",
        };
        f.write_str(s)
    }
}

/// Type qualifiers (we track `const` only; `volatile` and `restrict` are
/// outside the supported fragment, as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Qualifiers {
    /// `const`-qualification.
    pub constant: bool,
}

impl Qualifiers {
    /// No qualifiers.
    pub const fn none() -> Self {
        Qualifiers { constant: false }
    }

    /// `const` qualification.
    pub const fn const_() -> Self {
        Qualifiers { constant: true }
    }

    /// Union of two qualifier sets.
    pub fn merge(self, other: Qualifiers) -> Qualifiers {
        Qualifiers {
            constant: self.constant || other.constant,
        }
    }
}

/// A canonical C type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ctype {
    /// `void`.
    Void,
    /// An integer type.
    Integer(IntegerType),
    /// A floating type. Only `double` constants are parsed; no floating
    /// arithmetic is supported (as in the paper's stated scope).
    Floating,
    /// A pointer to a (possibly qualified) referenced type.
    Pointer(Qualifiers, Box<Ctype>),
    /// An array of a known element count (we do not support VLAs).
    Array(Box<Ctype>, Option<u64>),
    /// A function type: return type and parameter types, with a flag for
    /// variadic prototypes (only used for builtin `printf`).
    Function(Box<Ctype>, Vec<Ctype>, bool),
    /// A struct type, by tag.
    Struct(TagId),
    /// A union type, by tag.
    Union(TagId),
}

impl Ctype {
    /// Convenience constructor for an integer type.
    pub fn integer(it: IntegerType) -> Self {
        Ctype::Integer(it)
    }

    /// Convenience constructor for an unqualified pointer type.
    pub fn pointer(to: Ctype) -> Self {
        Ctype::Pointer(Qualifiers::none(), Box::new(to))
    }

    /// Convenience constructor for an array type.
    pub fn array(elem: Ctype, n: u64) -> Self {
        Ctype::Array(Box::new(elem), Some(n))
    }

    /// `char *`, the type of string literals after array decay.
    pub fn char_pointer() -> Self {
        Ctype::pointer(Ctype::integer(IntegerType::Char))
    }

    /// Whether the type is an integer type (6.2.5p17).
    pub fn is_integer(&self) -> bool {
        matches!(self, Ctype::Integer(_))
    }

    /// Whether the type is an arithmetic type (6.2.5p18); floats are included
    /// for classification even though arithmetic on them is unsupported.
    pub fn is_arithmetic(&self) -> bool {
        matches!(self, Ctype::Integer(_) | Ctype::Floating)
    }

    /// Whether the type is a scalar type (6.2.5p21).
    pub fn is_scalar(&self) -> bool {
        self.is_arithmetic() || matches!(self, Ctype::Pointer(..))
    }

    /// Whether the type is a pointer type.
    pub fn is_pointer(&self) -> bool {
        matches!(self, Ctype::Pointer(..))
    }

    /// Whether the type is an aggregate or union type.
    pub fn is_composite(&self) -> bool {
        matches!(self, Ctype::Struct(_) | Ctype::Union(_) | Ctype::Array(..))
    }

    /// Whether the type is a (possibly qualified) character type (6.2.5p15),
    /// relevant for the effective-type rules.
    pub fn is_character(&self) -> bool {
        matches!(
            self,
            Ctype::Integer(IntegerType::Char)
                | Ctype::Integer(IntegerType::SChar)
                | Ctype::Integer(IntegerType::UChar)
        )
    }

    /// Whether the type is an object type that can be read/written (i.e. not
    /// void, not a function).
    pub fn is_object(&self) -> bool {
        !matches!(self, Ctype::Void | Ctype::Function(..))
    }

    /// The integer type inside the `Ctype`, if any.
    pub fn as_integer(&self) -> Option<IntegerType> {
        match self {
            Ctype::Integer(it) => Some(*it),
            _ => None,
        }
    }

    /// The pointee of a pointer type.
    pub fn pointee(&self) -> Option<&Ctype> {
        match self {
            Ctype::Pointer(_, to) => Some(to),
            _ => None,
        }
    }

    /// Array element type and length, if this is an array type.
    pub fn array_parts(&self) -> Option<(&Ctype, Option<u64>)> {
        match self {
            Ctype::Array(elem, n) => Some((elem, *n)),
            _ => None,
        }
    }

    /// Perform array-to-pointer and function-to-pointer decay (6.3.2.1).
    pub fn decay(&self) -> Ctype {
        match self {
            Ctype::Array(elem, _) => Ctype::pointer((**elem).clone()),
            Ctype::Function(..) => Ctype::pointer(self.clone()),
            other => other.clone(),
        }
    }

    /// Whether two types are *compatible* in the (simplified) sense of 6.2.7:
    /// identical canonical structure, ignoring top-level qualifiers on
    /// pointees only when both sides carry them equally.
    pub fn compatible(&self, other: &Ctype) -> bool {
        self == other
    }
}

impl fmt::Display for Ctype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ctype::Void => f.write_str("void"),
            Ctype::Integer(it) => write!(f, "{it}"),
            Ctype::Floating => f.write_str("double"),
            Ctype::Pointer(q, to) => {
                if q.constant {
                    write!(f, "{to} *const")
                } else {
                    write!(f, "{to}*")
                }
            }
            Ctype::Array(elem, Some(n)) => write!(f, "{elem}[{n}]"),
            Ctype::Array(elem, None) => write!(f, "{elem}[]"),
            Ctype::Function(ret, params, variadic) => {
                write!(f, "{ret}(")?;
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{p}")?;
                }
                if *variadic {
                    if !params.is_empty() {
                        f.write_str(", ")?;
                    }
                    f.write_str("...")?;
                }
                f.write_str(")")
            }
            Ctype::Struct(tag) => write!(f, "struct {tag}"),
            Ctype::Union(tag) => write!(f, "union {tag}"),
        }
    }
}

/// A struct or union member: name and type (no bitfields, per the supported
/// fragment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Member {
    /// Member name.
    pub name: Ident,
    /// Member type.
    pub ty: Ctype,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_ordered() {
        assert!(IntegerType::Bool.rank() < IntegerType::Char.rank());
        assert!(IntegerType::Char.rank() < IntegerType::Short.rank());
        assert!(IntegerType::Short.rank() < IntegerType::Int.rank());
        assert!(IntegerType::Int.rank() < IntegerType::Long.rank());
        assert!(IntegerType::Long.rank() < IntegerType::LongLong.rank());
    }

    #[test]
    fn signedness_depends_on_char_choice() {
        assert!(IntegerType::Char.is_signed(true));
        assert!(!IntegerType::Char.is_signed(false));
        assert!(IntegerType::Int.is_signed(false));
        assert!(!IntegerType::UInt.is_signed(true));
    }

    #[test]
    fn array_decays_to_pointer() {
        let arr = Ctype::array(Ctype::integer(IntegerType::Int), 4);
        assert_eq!(
            arr.decay(),
            Ctype::pointer(Ctype::integer(IntegerType::Int))
        );
    }

    #[test]
    fn function_decays_to_function_pointer() {
        let fun = Ctype::Function(Box::new(Ctype::Void), vec![], false);
        assert!(
            matches!(fun.decay(), Ctype::Pointer(_, inner) if matches!(*inner, Ctype::Function(..)))
        );
    }

    #[test]
    fn character_types_are_recognised() {
        assert!(Ctype::integer(IntegerType::Char).is_character());
        assert!(Ctype::integer(IntegerType::UChar).is_character());
        assert!(!Ctype::integer(IntegerType::Int).is_character());
    }

    #[test]
    fn scalar_classification() {
        assert!(Ctype::integer(IntegerType::Int).is_scalar());
        assert!(Ctype::pointer(Ctype::Void).is_scalar());
        assert!(!Ctype::Struct(TagId(0)).is_scalar());
        assert!(!Ctype::Void.is_scalar());
    }

    #[test]
    fn display_is_readable() {
        let t = Ctype::pointer(Ctype::integer(IntegerType::UInt));
        assert_eq!(t.to_string(), "unsigned int*");
        let a = Ctype::array(Ctype::integer(IntegerType::Char), 3);
        assert_eq!(a.to_string(), "char[3]");
    }

    #[test]
    fn to_unsigned_keeps_rank() {
        for &it in IntegerType::all() {
            assert_eq!(it.rank(), it.to_unsigned().rank(), "{it}");
            assert!(!it.to_unsigned().is_signed(true) || it.to_unsigned() == IntegerType::Bool);
        }
    }
}
