//! Storage layout: struct/union definitions, sizes, alignments, member
//! offsets, and padding locations.
//!
//! The unspecified-padding questions of §2.5 make padding a first-class
//! semantic object, so the layout computation reports not only member offsets
//! but also the exact byte ranges that are padding.

use std::collections::HashMap;

use crate::ctype::{Ctype, Member, TagId};
use crate::env::ImplEnv;
use crate::ident::Ident;

/// Whether a tag names a struct or a union.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TagKind {
    /// `struct` definition: members laid out sequentially with padding.
    Struct,
    /// `union` definition: members overlap at offset zero.
    Union,
}

/// A struct or union definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagDefinition {
    /// Struct or union.
    pub kind: TagKind,
    /// The source spelling of the tag (may be generated for anonymous tags).
    pub name: Ident,
    /// Members in declaration order.
    pub members: Vec<Member>,
}

/// Registry of all struct/union definitions in a translation unit, addressed
/// by [`TagId`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TagRegistry {
    defs: Vec<Option<TagDefinition>>,
    by_name: HashMap<(TagKind, String), TagId>,
}

impl TagRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        TagRegistry::default()
    }

    /// Reserve a tag id for a (possibly forward-declared) struct/union name.
    pub fn declare(&mut self, kind: TagKind, name: &Ident) -> TagId {
        if let Some(&id) = self.by_name.get(&(kind, name.as_str().to_owned())) {
            return id;
        }
        let id = TagId(self.defs.len() as u32);
        self.defs.push(None);
        self.by_name.insert((kind, name.as_str().to_owned()), id);
        id
    }

    /// Complete (or define afresh) a tag with its member list. Returns the id.
    pub fn define(&mut self, kind: TagKind, name: &Ident, members: Vec<Member>) -> TagId {
        let id = self.declare(kind, name);
        self.defs[id.0 as usize] = Some(TagDefinition {
            kind,
            name: name.clone(),
            members,
        });
        id
    }

    /// Look up a definition by id. Returns `None` for declared-but-undefined
    /// (incomplete) tags.
    pub fn get(&self, id: TagId) -> Option<&TagDefinition> {
        self.defs.get(id.0 as usize).and_then(|d| d.as_ref())
    }

    /// Look up a tag id by kind and source name.
    pub fn lookup(&self, kind: TagKind, name: &str) -> Option<TagId> {
        self.by_name.get(&(kind, name.to_owned())).copied()
    }

    /// Iterate over all completed definitions.
    pub fn iter(&self) -> impl Iterator<Item = (TagId, &TagDefinition)> {
        self.defs
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.as_ref().map(|d| (TagId(i as u32), d)))
    }

    /// Number of declared tags.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether no tags have been declared.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }
}

/// A byte range within an object that is padding (no member lives there).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaddingRange {
    /// Offset of the first padding byte.
    pub offset: u64,
    /// Number of padding bytes.
    pub len: u64,
}

/// The computed layout of a struct or union type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// Total size in bytes, including trailing padding.
    pub size: u64,
    /// Alignment requirement in bytes.
    pub align: u64,
    /// `(member name, offset, size)` for each member in declaration order.
    pub members: Vec<(Ident, u64, u64)>,
    /// Padding byte ranges (inter-member and trailing).
    pub padding: Vec<PaddingRange>,
}

impl Layout {
    /// Offset of a member by name.
    pub fn offset_of(&self, name: &str) -> Option<u64> {
        self.members
            .iter()
            .find(|(n, _, _)| n.as_str() == name)
            .map(|(_, off, _)| *off)
    }

    /// Whether byte `offset` falls in padding.
    pub fn is_padding(&self, offset: u64) -> bool {
        self.padding
            .iter()
            .any(|p| offset >= p.offset && offset < p.offset + p.len)
    }

    /// Total number of padding bytes.
    pub fn padding_bytes(&self) -> u64 {
        self.padding.iter().map(|p| p.len).sum()
    }
}

/// Layout computation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// The type is incomplete (e.g. a forward-declared struct or `void`).
    Incomplete(String),
    /// The type has no object representation (function types).
    NotAnObject(String),
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::Incomplete(t) => write!(f, "incomplete type {t} has no layout"),
            LayoutError::NotAnObject(t) => write!(f, "type {t} is not an object type"),
        }
    }
}

impl std::error::Error for LayoutError {}

/// Round `v` up to the next multiple of `align`.
pub fn align_up(v: u64, align: u64) -> u64 {
    debug_assert!(align > 0);
    v.div_ceil(align) * align
}

/// Size of a type in bytes, following the natural-alignment layout algorithm
/// used by the mainstream SysV-style ABIs.
pub fn size_of(ty: &Ctype, env: &ImplEnv, tags: &TagRegistry) -> Result<u64, LayoutError> {
    match ty {
        Ctype::Void => Err(LayoutError::Incomplete("void".into())),
        Ctype::Function(..) => Err(LayoutError::NotAnObject(ty.to_string())),
        Ctype::Integer(it) => Ok(env.integer_size(*it)),
        Ctype::Floating => Ok(8),
        Ctype::Pointer(..) => Ok(env.pointer_size),
        Ctype::Array(elem, Some(n)) => Ok(size_of(elem, env, tags)? * n),
        Ctype::Array(_, None) => Err(LayoutError::Incomplete(ty.to_string())),
        Ctype::Struct(id) | Ctype::Union(id) => Ok(layout_of_tag(*id, env, tags)?.size),
    }
}

/// Alignment of a type in bytes.
pub fn align_of(ty: &Ctype, env: &ImplEnv, tags: &TagRegistry) -> Result<u64, LayoutError> {
    match ty {
        Ctype::Void => Err(LayoutError::Incomplete("void".into())),
        Ctype::Function(..) => Err(LayoutError::NotAnObject(ty.to_string())),
        Ctype::Integer(it) => Ok(env.integer_align(*it)),
        Ctype::Floating => Ok(8),
        Ctype::Pointer(..) => Ok(env.pointer_size.min(env.max_align)),
        Ctype::Array(elem, _) => align_of(elem, env, tags),
        Ctype::Struct(id) | Ctype::Union(id) => Ok(layout_of_tag(*id, env, tags)?.align),
    }
}

/// Layout of a struct/union tag.
pub fn layout_of_tag(id: TagId, env: &ImplEnv, tags: &TagRegistry) -> Result<Layout, LayoutError> {
    let def = tags
        .get(id)
        .ok_or_else(|| LayoutError::Incomplete(format!("struct/union {id}")))?;
    match def.kind {
        TagKind::Struct => layout_struct(&def.members, env, tags),
        TagKind::Union => layout_union(&def.members, env, tags),
    }
}

/// Layout of a struct with the given member list.
pub fn layout_struct(
    members: &[Member],
    env: &ImplEnv,
    tags: &TagRegistry,
) -> Result<Layout, LayoutError> {
    let mut offset = 0u64;
    let mut align = 1u64;
    let mut laid = Vec::with_capacity(members.len());
    let mut padding = Vec::new();
    for m in members {
        let ma = align_of(&m.ty, env, tags)?;
        let ms = size_of(&m.ty, env, tags)?;
        let aligned = align_up(offset, ma);
        if aligned > offset {
            padding.push(PaddingRange {
                offset,
                len: aligned - offset,
            });
        }
        laid.push((m.name.clone(), aligned, ms));
        offset = aligned + ms;
        align = align.max(ma);
    }
    let size = align_up(offset.max(1), align);
    if size > offset {
        padding.push(PaddingRange {
            offset,
            len: size - offset,
        });
    }
    Ok(Layout {
        size,
        align,
        members: laid,
        padding,
    })
}

/// Layout of a union with the given member list: members all at offset zero,
/// size is the maximum member size rounded to the maximum alignment.
pub fn layout_union(
    members: &[Member],
    env: &ImplEnv,
    tags: &TagRegistry,
) -> Result<Layout, LayoutError> {
    let mut size = 0u64;
    let mut align = 1u64;
    let mut laid = Vec::with_capacity(members.len());
    for m in members {
        let ma = align_of(&m.ty, env, tags)?;
        let ms = size_of(&m.ty, env, tags)?;
        laid.push((m.name.clone(), 0, ms));
        size = size.max(ms);
        align = align.max(ma);
    }
    let total = align_up(size.max(1), align);
    let padding = if total > size {
        vec![PaddingRange {
            offset: size,
            len: total - size,
        }]
    } else {
        Vec::new()
    };
    Ok(Layout {
        size: total,
        align,
        members: laid,
        padding,
    })
}

/// Offset of member `name` within the struct/union `id` (the `offsetof`
/// operator).
pub fn offset_of(
    id: TagId,
    name: &str,
    env: &ImplEnv,
    tags: &TagRegistry,
) -> Result<u64, LayoutError> {
    let layout = layout_of_tag(id, env, tags)?;
    layout
        .offset_of(name)
        .ok_or_else(|| LayoutError::Incomplete(format!("no member {name} in {id}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctype::IntegerType;

    fn member(name: &str, ty: Ctype) -> Member {
        Member {
            name: Ident::new(name),
            ty,
        }
    }

    #[test]
    fn char_int_struct_has_padding() {
        let env = ImplEnv::lp64();
        let tags = TagRegistry::new();
        let layout = layout_struct(
            &[
                member("c", Ctype::integer(IntegerType::Char)),
                member("i", Ctype::integer(IntegerType::Int)),
            ],
            &env,
            &tags,
        )
        .unwrap();
        assert_eq!(layout.size, 8);
        assert_eq!(layout.align, 4);
        assert_eq!(layout.offset_of("c"), Some(0));
        assert_eq!(layout.offset_of("i"), Some(4));
        assert_eq!(layout.padding_bytes(), 3);
        assert!(layout.is_padding(1));
        assert!(layout.is_padding(3));
        assert!(!layout.is_padding(0));
        assert!(!layout.is_padding(4));
    }

    #[test]
    fn trailing_padding_is_reported() {
        let env = ImplEnv::lp64();
        let tags = TagRegistry::new();
        let layout = layout_struct(
            &[
                member("i", Ctype::integer(IntegerType::Int)),
                member("c", Ctype::integer(IntegerType::Char)),
            ],
            &env,
            &tags,
        )
        .unwrap();
        assert_eq!(layout.size, 8);
        assert_eq!(layout.padding_bytes(), 3);
        assert!(layout.is_padding(5));
        assert!(layout.is_padding(7));
    }

    #[test]
    fn union_size_is_max_member() {
        let env = ImplEnv::lp64();
        let tags = TagRegistry::new();
        let layout = layout_union(
            &[
                member("c", Ctype::integer(IntegerType::Char)),
                member("l", Ctype::integer(IntegerType::Long)),
            ],
            &env,
            &tags,
        )
        .unwrap();
        assert_eq!(layout.size, 8);
        assert_eq!(layout.align, 8);
        assert_eq!(layout.offset_of("c"), Some(0));
        assert_eq!(layout.offset_of("l"), Some(0));
    }

    #[test]
    fn nested_struct_layout() {
        let env = ImplEnv::lp64();
        let mut tags = TagRegistry::new();
        let inner = tags.define(
            TagKind::Struct,
            &Ident::new("inner"),
            vec![
                member("a", Ctype::integer(IntegerType::Char)),
                member("b", Ctype::integer(IntegerType::Long)),
            ],
        );
        let outer = tags.define(
            TagKind::Struct,
            &Ident::new("outer"),
            vec![
                member("x", Ctype::integer(IntegerType::Int)),
                member("s", Ctype::Struct(inner)),
            ],
        );
        let layout = layout_of_tag(outer, &env, &tags).unwrap();
        assert_eq!(layout.offset_of("x"), Some(0));
        assert_eq!(layout.offset_of("s"), Some(8));
        assert_eq!(layout.size, 24);
    }

    #[test]
    fn array_size_multiplies() {
        let env = ImplEnv::lp64();
        let tags = TagRegistry::new();
        let arr = Ctype::array(Ctype::integer(IntegerType::Int), 10);
        assert_eq!(size_of(&arr, &env, &tags).unwrap(), 40);
        assert_eq!(align_of(&arr, &env, &tags).unwrap(), 4);
    }

    #[test]
    fn incomplete_types_have_no_layout() {
        let env = ImplEnv::lp64();
        let mut tags = TagRegistry::new();
        let fwd = tags.declare(TagKind::Struct, &Ident::new("fwd"));
        assert!(layout_of_tag(fwd, &env, &tags).is_err());
        assert!(size_of(&Ctype::Void, &env, &tags).is_err());
    }

    #[test]
    fn declare_is_idempotent() {
        let mut tags = TagRegistry::new();
        let a = tags.declare(TagKind::Struct, &Ident::new("s"));
        let b = tags.declare(TagKind::Struct, &Ident::new("s"));
        assert_eq!(a, b);
        let c = tags.declare(TagKind::Union, &Ident::new("s"));
        assert_ne!(a, c);
    }

    #[test]
    fn empty_struct_occupies_one_byte() {
        let env = ImplEnv::lp64();
        let tags = TagRegistry::new();
        let layout = layout_struct(&[], &env, &tags).unwrap();
        assert_eq!(layout.size, 1);
    }

    #[test]
    fn align_up_basics() {
        assert_eq!(align_up(0, 4), 0);
        assert_eq!(align_up(1, 4), 4);
        assert_eq!(align_up(4, 4), 4);
        assert_eq!(align_up(5, 8), 8);
    }
}
