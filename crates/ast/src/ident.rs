//! C identifiers.
//!
//! Identifiers appear throughout the pipeline: C source identifiers in Cabs
//! and Ail, and fresh symbols manufactured during elaboration into Core. The
//! same representation serves both; fresh symbols carry a numeric suffix that
//! cannot collide with any C identifier because it contains a `'` character,
//! which is not part of the C identifier character set.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// An identifier: either a C source identifier or a generated symbol.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ident {
    name: String,
}

static FRESH_COUNTER: AtomicU64 = AtomicU64::new(0);

impl Ident {
    /// An identifier spelled exactly as in the source.
    pub fn new(name: impl Into<String>) -> Self {
        Ident { name: name.into() }
    }

    /// A fresh symbol that cannot clash with any source identifier.
    ///
    /// The `hint` is kept as a prefix so pretty-printed Core remains readable,
    /// e.g. `e1'17` for the 17th fresh symbol derived from `e1`.
    pub fn fresh(hint: &str) -> Self {
        let n = FRESH_COUNTER.fetch_add(1, Ordering::Relaxed);
        Ident {
            name: format!("{hint}'{n}"),
        }
    }

    /// The textual spelling.
    pub fn as_str(&self) -> &str {
        &self.name
    }

    /// Whether this identifier was produced by [`Ident::fresh`].
    pub fn is_generated(&self) -> bool {
        self.name.contains('\'')
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for Ident {
    fn from(s: &str) -> Self {
        Ident::new(s)
    }
}

impl From<String> for Ident {
    fn from(s: String) -> Self {
        Ident::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_symbols_are_distinct() {
        let a = Ident::fresh("x");
        let b = Ident::fresh("x");
        assert_ne!(a, b);
        assert!(a.is_generated());
        assert!(b.is_generated());
    }

    #[test]
    fn source_identifiers_are_not_generated() {
        assert!(!Ident::new("main").is_generated());
        assert_eq!(Ident::new("main").as_str(), "main");
    }

    #[test]
    fn fresh_keeps_hint_prefix() {
        let a = Ident::fresh("tmp");
        assert!(a.as_str().starts_with("tmp'"));
    }
}
