//! A restricted operational C11 concurrency model (the paper's alternative
//! instantiation of the Cerberus memory interface, §5.1/§7).
//!
//! The paper links Cerberus either with the sequential memory object model or
//! with an operational C/C++11 concurrency model. This crate provides the
//! restricted concurrency layer used for the `par`/`wait` Core constructs:
//! execution events (reads, writes, and read-modify-writes at a memory order),
//! the *sequenced-before* and *happens-before* relations over them, and a data
//! race detector. It deliberately covers only the fragment the paper's
//! experiments need — SC and release/acquire atomics plus non-atomic accesses
//! — not the full axiomatic model of Batty et al.

use std::collections::{HashMap, HashSet};

/// Thread identifiers.
pub type ThreadId = u32;
/// Event identifiers (unique within an execution).
pub type EventId = u64;

/// C11 memory orders supported by the restricted model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Order {
    /// A plain, non-atomic access.
    NonAtomic,
    /// `memory_order_relaxed`.
    Relaxed,
    /// `memory_order_acquire` (loads).
    Acquire,
    /// `memory_order_release` (stores).
    Release,
    /// `memory_order_seq_cst`.
    SeqCst,
}

impl Order {
    /// Whether the order is atomic.
    pub fn is_atomic(self) -> bool {
        !matches!(self, Order::NonAtomic)
    }

    /// Whether a load at this order can synchronise with a release store.
    pub fn acquires(self) -> bool {
        matches!(self, Order::Acquire | Order::SeqCst)
    }

    /// Whether a store at this order can synchronise with an acquire load.
    pub fn releases(self) -> bool {
        matches!(self, Order::Release | Order::SeqCst)
    }
}

/// What kind of memory access an event performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
    /// An atomic read-modify-write.
    ReadModifyWrite,
}

impl AccessKind {
    /// Whether the access writes.
    pub fn writes(self) -> bool {
        matches!(self, AccessKind::Write | AccessKind::ReadModifyWrite)
    }
}

/// One memory access event of an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Unique id (program order within a thread is by ascending id).
    pub id: EventId,
    /// The thread that performed the access.
    pub thread: ThreadId,
    /// Read, write or RMW.
    pub kind: AccessKind,
    /// The accessed location (an address or abstract location id).
    pub location: u64,
    /// The number of bytes accessed.
    pub size: u64,
    /// The memory order.
    pub order: Order,
}

impl Event {
    /// Whether two events access overlapping footprints.
    pub fn overlaps(&self, other: &Event) -> bool {
        self.location < other.location + other.size && other.location < self.location + self.size
    }

    /// Whether two events conflict (overlap and at least one writes).
    pub fn conflicts_with(&self, other: &Event) -> bool {
        self.overlaps(other) && (self.kind.writes() || other.kind.writes())
    }
}

/// A reported data race: the two conflicting events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataRace {
    /// The first event.
    pub first: Event,
    /// The second event.
    pub second: Event,
}

/// An execution: a set of events plus the synchronisation edges observed while
/// it was generated (release store → acquire load that read from it).
#[derive(Debug, Clone, Default)]
pub struct Execution {
    events: Vec<Event>,
    /// `synchronizes-with` edges: (release event id, acquire event id).
    sw_edges: Vec<(EventId, EventId)>,
    next_id: EventId,
}

impl Execution {
    /// An empty execution.
    pub fn new() -> Self {
        Execution::default()
    }

    /// Record an access event, returning its id.
    pub fn record(
        &mut self,
        thread: ThreadId,
        kind: AccessKind,
        location: u64,
        size: u64,
        order: Order,
    ) -> EventId {
        let id = self.next_id;
        self.next_id += 1;
        self.events.push(Event {
            id,
            thread,
            kind,
            location,
            size,
            order,
        });
        id
    }

    /// Record that the acquire load `acquire` read from the release store
    /// `release`, creating a synchronizes-with edge.
    pub fn record_synchronizes_with(&mut self, release: EventId, acquire: EventId) {
        self.sw_edges.push((release, acquire));
    }

    /// The recorded events.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Sequenced-before: within a thread, by ascending event id.
    pub fn sequenced_before(&self, a: &Event, b: &Event) -> bool {
        a.thread == b.thread && a.id < b.id
    }

    /// Happens-before: the transitive closure of sequenced-before and
    /// synchronizes-with (the restricted fragment: no consume, no fences).
    pub fn happens_before(&self, a: &Event, b: &Event) -> bool {
        let mut adj: HashMap<EventId, Vec<EventId>> = HashMap::new();
        for x in &self.events {
            for y in &self.events {
                if self.sequenced_before(x, y) {
                    adj.entry(x.id).or_default().push(y.id);
                }
            }
        }
        for (rel, acq) in &self.sw_edges {
            adj.entry(*rel).or_default().push(*acq);
        }
        let mut seen: HashSet<EventId> = HashSet::new();
        let mut stack = vec![a.id];
        while let Some(cur) = stack.pop() {
            if cur == b.id && cur != a.id {
                return true;
            }
            if !seen.insert(cur) {
                continue;
            }
            if let Some(nexts) = adj.get(&cur) {
                stack.extend(nexts.iter().copied());
            }
        }
        false
    }

    /// Find all data races: pairs of conflicting accesses from different
    /// threads, not both atomic, unrelated by happens-before (5.1.2.4p25).
    pub fn find_data_races(&self) -> Vec<DataRace> {
        let mut races = Vec::new();
        for (i, a) in self.events.iter().enumerate() {
            for b in &self.events[i + 1..] {
                if a.thread == b.thread {
                    continue;
                }
                if !a.conflicts_with(b) {
                    continue;
                }
                if a.order.is_atomic() && b.order.is_atomic() {
                    continue;
                }
                if self.happens_before(a, b) || self.happens_before(b, a) {
                    continue;
                }
                races.push(DataRace {
                    first: a.clone(),
                    second: b.clone(),
                });
            }
        }
        races
    }

    /// Whether two events of the *same* thread form an unsequenced race
    /// (6.5p2): conflicting accesses with neither sequenced before the other.
    /// Callers supply events known to be unsequenced (e.g. from `unseq`
    /// siblings).
    pub fn unsequenced_race(a: &Event, b: &Event) -> bool {
        a.thread == b.thread && a.conflicts_with(b)
    }
}

/// Enumerate interleavings of per-thread event sequences, preserving each
/// thread's program order, up to `limit` schedules (used by the exhaustive
/// driver for `par`).
pub fn interleavings<T: Clone>(threads: &[Vec<T>], limit: usize) -> Vec<Vec<T>> {
    fn go<T: Clone>(
        threads: &[Vec<T>],
        indices: &mut Vec<usize>,
        current: &mut Vec<T>,
        out: &mut Vec<Vec<T>>,
        total: usize,
        limit: usize,
    ) {
        if out.len() >= limit {
            return;
        }
        if current.len() == total {
            out.push(current.clone());
            return;
        }
        for t in 0..threads.len() {
            if indices[t] < threads[t].len() {
                current.push(threads[t][indices[t]].clone());
                indices[t] += 1;
                go(threads, indices, current, out, total, limit);
                indices[t] -= 1;
                current.pop();
            }
        }
    }
    let mut out = Vec::new();
    let mut indices = vec![0usize; threads.len()];
    let total: usize = threads.iter().map(Vec::len).sum();
    let mut current = Vec::with_capacity(total);
    go(threads, &mut indices, &mut current, &mut out, total, limit);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_atomic_conflict_across_threads_is_a_race() {
        let mut ex = Execution::new();
        ex.record(0, AccessKind::Write, 0x100, 4, Order::NonAtomic);
        ex.record(1, AccessKind::Read, 0x100, 4, Order::NonAtomic);
        let races = ex.find_data_races();
        assert_eq!(races.len(), 1);
    }

    #[test]
    fn atomic_accesses_do_not_race() {
        let mut ex = Execution::new();
        ex.record(0, AccessKind::Write, 0x100, 4, Order::SeqCst);
        ex.record(1, AccessKind::Read, 0x100, 4, Order::SeqCst);
        assert!(ex.find_data_races().is_empty());
    }

    #[test]
    fn release_acquire_synchronisation_orders_the_data_access() {
        // Thread 0: write data (non-atomic); release-store flag.
        // Thread 1: acquire-load flag (reads from the release); read data.
        let mut ex = Execution::new();
        let _d_w = ex.record(0, AccessKind::Write, 0x200, 4, Order::NonAtomic);
        let rel = ex.record(0, AccessKind::Write, 0x204, 4, Order::Release);
        let acq = ex.record(1, AccessKind::Read, 0x204, 4, Order::Acquire);
        let _d_r = ex.record(1, AccessKind::Read, 0x200, 4, Order::NonAtomic);
        ex.record_synchronizes_with(rel, acq);
        assert!(ex.find_data_races().is_empty());
    }

    #[test]
    fn relaxed_flag_does_not_synchronise() {
        let mut ex = Execution::new();
        ex.record(0, AccessKind::Write, 0x200, 4, Order::NonAtomic);
        ex.record(0, AccessKind::Write, 0x204, 4, Order::Relaxed);
        ex.record(1, AccessKind::Read, 0x204, 4, Order::Relaxed);
        ex.record(1, AccessKind::Read, 0x200, 4, Order::NonAtomic);
        // No synchronizes-with edge was recorded, so the data accesses race.
        assert_eq!(ex.find_data_races().len(), 1);
    }

    #[test]
    fn disjoint_footprints_do_not_conflict() {
        let mut ex = Execution::new();
        ex.record(0, AccessKind::Write, 0x100, 4, Order::NonAtomic);
        ex.record(1, AccessKind::Write, 0x104, 4, Order::NonAtomic);
        assert!(ex.find_data_races().is_empty());
        let a = ex.events()[0].clone();
        let b = ex.events()[1].clone();
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn overlapping_partial_footprints_conflict() {
        let a = Event {
            id: 0,
            thread: 0,
            kind: AccessKind::Write,
            location: 0x100,
            size: 4,
            order: Order::NonAtomic,
        };
        let b = Event {
            id: 1,
            thread: 1,
            kind: AccessKind::Read,
            location: 0x102,
            size: 4,
            order: Order::NonAtomic,
        };
        assert!(a.conflicts_with(&b));
        let c = Event {
            id: 2,
            thread: 1,
            kind: AccessKind::Read,
            location: 0x100,
            size: 4,
            order: Order::NonAtomic,
        };
        let d = Event {
            id: 3,
            thread: 0,
            kind: AccessKind::Read,
            location: 0x100,
            size: 4,
            order: Order::NonAtomic,
        };
        assert!(!c.conflicts_with(&d));
    }

    #[test]
    fn happens_before_is_transitive_through_sw() {
        let mut ex = Execution::new();
        let a = ex.record(0, AccessKind::Write, 0x1, 1, Order::NonAtomic);
        let rel = ex.record(0, AccessKind::Write, 0x2, 1, Order::Release);
        let acq = ex.record(1, AccessKind::Read, 0x2, 1, Order::Acquire);
        let b = ex.record(1, AccessKind::Read, 0x1, 1, Order::NonAtomic);
        ex.record_synchronizes_with(rel, acq);
        let ea = ex.events()[a as usize].clone();
        let eb = ex.events()[b as usize].clone();
        assert!(ex.happens_before(&ea, &eb));
        assert!(!ex.happens_before(&eb, &ea));
    }

    #[test]
    fn unsequenced_race_detection() {
        let a = Event {
            id: 0,
            thread: 0,
            kind: AccessKind::Write,
            location: 0x10,
            size: 4,
            order: Order::NonAtomic,
        };
        let b = Event {
            id: 1,
            thread: 0,
            kind: AccessKind::Write,
            location: 0x10,
            size: 4,
            order: Order::NonAtomic,
        };
        assert!(Execution::unsequenced_race(&a, &b));
    }

    #[test]
    fn interleaving_enumeration_counts() {
        let t0 = vec!["a1", "a2"];
        let t1 = vec!["b1"];
        let all = interleavings(&[t0, t1], 100);
        // C(3,1) = 3 interleavings.
        assert_eq!(all.len(), 3);
        for sched in &all {
            let pos_a1 = sched.iter().position(|&x| x == "a1").unwrap();
            let pos_a2 = sched.iter().position(|&x| x == "a2").unwrap();
            assert!(pos_a1 < pos_a2, "program order must be preserved");
        }
        // The limit is honoured.
        assert_eq!(interleavings(&[vec![1, 2, 3], vec![4, 5, 6]], 5).len(), 5);
    }

    #[test]
    fn order_predicates() {
        assert!(Order::SeqCst.acquires());
        assert!(Order::SeqCst.releases());
        assert!(Order::Acquire.acquires());
        assert!(!Order::Acquire.releases());
        assert!(!Order::Relaxed.acquires());
        assert!(!Order::NonAtomic.is_atomic());
    }
}
