//! Typing rules shared by the desugaring/type-checking pass: the typing of
//! integer constants, the usual arithmetic conversions over [`Ctype`]s, and
//! the classification of binary operators.
//!
//! These are the compile-time counterparts of the rules the elaboration
//! (Fig. 3 of the paper) applies at Core level: the *types* are computed here;
//! the *values* (with their undefined-behaviour checks) are computed by the
//! elaborated Core.

use cerberus_ast::ctype::{Ctype, IntegerType};
use cerberus_ast::diag::ConstraintViolation;
use cerberus_ast::env::ImplEnv;
use cerberus_ast::loc::Span;

use crate::ail::BinOp;

/// The type of an integer constant (ISO C11 6.4.4.1p5): the first type in the
/// suffix-determined candidate list that can represent the value.
pub fn choose_int_const_type(value: i128, unsigned: bool, longs: u8, env: &ImplEnv) -> IntegerType {
    use IntegerType::*;
    let candidates: &[IntegerType] = match (unsigned, longs) {
        (false, 0) => &[Int, Long, LongLong],
        (false, 1) => &[Long, LongLong],
        (false, _) => &[LongLong],
        (true, 0) => &[UInt, ULong, ULongLong],
        (true, 1) => &[ULong, ULongLong],
        (true, _) => &[ULongLong],
    };
    for &candidate in candidates {
        if env.representable(value, candidate) {
            return candidate;
        }
    }
    // Falls off the end only for values beyond unsigned long long; saturate at
    // the widest candidate (the program is then rejected elsewhere or wraps).
    *candidates.last().expect("candidate list is never empty")
}

/// The result type of a binary operator applied to operands of the given
/// types, following 6.5.5 – 6.5.14 for the supported fragment. Array and
/// function types are expected to have been decayed by the caller.
///
/// # Errors
///
/// Returns a [`ConstraintViolation`] citing the violated clause when the
/// operand types are not allowed for the operator.
pub fn binary_result_type(
    op: BinOp,
    lhs: &Ctype,
    rhs: &Ctype,
    env: &ImplEnv,
    span: Span,
) -> Result<Ctype, ConstraintViolation> {
    use BinOp::*;
    let int_result = Ctype::integer(IntegerType::Int);
    match op {
        LogicalAnd | LogicalOr => {
            if lhs.is_scalar() && rhs.is_scalar() {
                Ok(int_result)
            } else {
                Err(ConstraintViolation::new(
                    "operands of a logical operator shall have scalar type",
                    "6.5.13p2",
                    span,
                ))
            }
        }
        Eq | Ne => {
            if (lhs.is_arithmetic() && rhs.is_arithmetic())
                || (lhs.is_pointer() && rhs.is_pointer())
                || (lhs.is_pointer() && rhs.is_integer())
                || (lhs.is_integer() && rhs.is_pointer())
            {
                Ok(int_result)
            } else {
                Err(ConstraintViolation::new(
                    "invalid operand types for equality comparison",
                    "6.5.9p2",
                    span,
                ))
            }
        }
        Lt | Gt | Le | Ge => {
            if (lhs.is_arithmetic() && rhs.is_arithmetic())
                || (lhs.is_pointer() && rhs.is_pointer())
            {
                Ok(int_result)
            } else {
                Err(ConstraintViolation::new(
                    "invalid operand types for relational comparison",
                    "6.5.8p2",
                    span,
                ))
            }
        }
        Shl | Shr => match (lhs.as_integer(), rhs.as_integer()) {
            (Some(l), Some(_)) => Ok(Ctype::integer(env.integer_promotion(l))),
            _ => Err(ConstraintViolation::new(
                "each of the operands of a shift operator shall have integer type",
                "6.5.7p2",
                span,
            )),
        },
        Add => {
            if lhs.is_pointer() && rhs.is_integer() {
                Ok(lhs.clone())
            } else if lhs.is_integer() && rhs.is_pointer() {
                Ok(rhs.clone())
            } else {
                arithmetic_binary(lhs, rhs, env, "6.5.6p2", span)
            }
        }
        Sub => {
            if lhs.is_pointer() && rhs.is_pointer() {
                Ok(Ctype::integer(IntegerType::PtrdiffT))
            } else if lhs.is_pointer() && rhs.is_integer() {
                Ok(lhs.clone())
            } else {
                arithmetic_binary(lhs, rhs, env, "6.5.6p3", span)
            }
        }
        Mul | Div => arithmetic_binary(lhs, rhs, env, "6.5.5p2", span),
        Mod | BitAnd | BitXor | BitOr => match (lhs.as_integer(), rhs.as_integer()) {
            (Some(l), Some(r)) => Ok(Ctype::integer(env.usual_arithmetic_conversion(l, r))),
            _ => Err(ConstraintViolation::new(
                "operands shall have integer type",
                "6.5.5p2",
                span,
            )),
        },
    }
}

fn arithmetic_binary(
    lhs: &Ctype,
    rhs: &Ctype,
    env: &ImplEnv,
    clause: &'static str,
    span: Span,
) -> Result<Ctype, ConstraintViolation> {
    match (lhs.as_integer(), rhs.as_integer()) {
        (Some(l), Some(r)) => Ok(Ctype::integer(env.usual_arithmetic_conversion(l, r))),
        _ => {
            if lhs.is_arithmetic() && rhs.is_arithmetic() {
                // Involves floating types: classification only.
                Ok(Ctype::Floating)
            } else {
                Err(ConstraintViolation::new(
                    "operands shall have arithmetic type",
                    clause,
                    span,
                ))
            }
        }
    }
}

/// Whether a value of type `from` may be assigned to an lvalue of type `to`
/// under the simple-assignment constraints of 6.5.16.1p1 (restricted to the
/// supported fragment: arithmetic-to-arithmetic, pointer-to-same-pointer,
/// `void *` inter-conversion, null pointer constants, and struct/union
/// identity).
pub fn assignable(to: &Ctype, from: &Ctype) -> bool {
    if to.is_arithmetic() && from.is_arithmetic() {
        return true;
    }
    match (to, from) {
        (Ctype::Pointer(_, a), Ctype::Pointer(_, b)) => {
            a == b || matches!(**a, Ctype::Void) || matches!(**b, Ctype::Void)
        }
        // An integer constant expression with value 0 is a null pointer
        // constant; the desugaring checks the value, here we accept any
        // integer source conservatively and let it check.
        (Ctype::Pointer(..), t) if t.is_integer() => true,
        (Ctype::Struct(a), Ctype::Struct(b)) | (Ctype::Union(a), Ctype::Union(b)) => a == b,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> ImplEnv {
        ImplEnv::lp64()
    }

    #[test]
    fn decimal_constants_prefer_int() {
        assert_eq!(choose_int_const_type(1, false, 0, &env()), IntegerType::Int);
        assert_eq!(
            choose_int_const_type(5_000_000_000, false, 0, &env()),
            IntegerType::Long
        );
        assert_eq!(choose_int_const_type(1, true, 0, &env()), IntegerType::UInt);
        assert_eq!(
            choose_int_const_type(1, false, 1, &env()),
            IntegerType::Long
        );
        assert_eq!(
            choose_int_const_type(u64::MAX as i128, true, 0, &env()),
            IntegerType::ULong
        );
    }

    #[test]
    fn shift_result_is_promoted_left_operand() {
        let t = binary_result_type(
            BinOp::Shl,
            &Ctype::integer(IntegerType::Char),
            &Ctype::integer(IntegerType::Long),
            &env(),
            Span::synthetic(),
        )
        .unwrap();
        assert_eq!(t, Ctype::integer(IntegerType::Int));
    }

    #[test]
    fn comparisons_yield_int() {
        let t = binary_result_type(
            BinOp::Lt,
            &Ctype::integer(IntegerType::ULong),
            &Ctype::integer(IntegerType::Int),
            &env(),
            Span::synthetic(),
        )
        .unwrap();
        assert_eq!(t, Ctype::integer(IntegerType::Int));
    }

    #[test]
    fn pointer_arithmetic_types() {
        let p = Ctype::pointer(Ctype::integer(IntegerType::Int));
        let i = Ctype::integer(IntegerType::Int);
        assert_eq!(
            binary_result_type(BinOp::Add, &p, &i, &env(), Span::synthetic()).unwrap(),
            p
        );
        assert_eq!(
            binary_result_type(BinOp::Add, &i, &p, &env(), Span::synthetic()).unwrap(),
            p
        );
        assert_eq!(
            binary_result_type(BinOp::Sub, &p, &p, &env(), Span::synthetic()).unwrap(),
            Ctype::integer(IntegerType::PtrdiffT)
        );
    }

    #[test]
    fn shift_of_pointer_is_a_constraint_violation() {
        let p = Ctype::pointer(Ctype::integer(IntegerType::Int));
        let i = Ctype::integer(IntegerType::Int);
        let err = binary_result_type(BinOp::Shl, &p, &i, &env(), Span::synthetic()).unwrap_err();
        assert_eq!(err.iso_clause(), "6.5.7p2");
    }

    #[test]
    fn mixed_sign_arithmetic_goes_unsigned() {
        let t = binary_result_type(
            BinOp::Add,
            &Ctype::integer(IntegerType::Int),
            &Ctype::integer(IntegerType::UInt),
            &env(),
            Span::synthetic(),
        )
        .unwrap();
        assert_eq!(t, Ctype::integer(IntegerType::UInt));
    }

    #[test]
    fn assignability() {
        let int = Ctype::integer(IntegerType::Int);
        let uint = Ctype::integer(IntegerType::UInt);
        let pint = Ctype::pointer(int.clone());
        let pvoid = Ctype::pointer(Ctype::Void);
        let pchar = Ctype::pointer(Ctype::integer(IntegerType::Char));
        assert!(assignable(&int, &uint));
        assert!(assignable(&pint, &pint));
        assert!(assignable(&pint, &pvoid));
        assert!(assignable(&pvoid, &pchar));
        assert!(!assignable(&pint, &pchar));
        assert!(!assignable(
            &int,
            &Ctype::Struct(cerberus_ast::ctype::TagId(0))
        ));
    }
}
