//! The Cabs-to-Ail desugaring and type-checking pass (§5.1 of the paper).
//!
//! This pass resolves identifier scoping, normalises syntactic C types into
//! canonical [`Ctype`]s, replaces enums by integer constants, rewrites
//! `e1[e2]` and `p->m` into their defining forms, folds `sizeof`/`_Alignof`
//! and other integer constant expressions, classifies storage durations, and
//! annotates every expression with its type — rejecting programs that violate
//! the constraints of ISO C11 with a diagnostic citing the violated clause.

use std::collections::HashMap;

use cerberus_ast::ctype::{Ctype, IntegerType, Member};
use cerberus_ast::diag::ConstraintViolation;
use cerberus_ast::env::ImplEnv;
use cerberus_ast::ident::Ident;
use cerberus_ast::layout::{self, TagKind, TagRegistry};
use cerberus_ast::loc::Span;
use cerberus_parser::cabs::{self, StorageClass, TranslationUnit};
use cerberus_parser::parser::ParseError;
use cerberus_parser::token::IntSuffix;

use crate::ail::*;
use crate::typing::{assignable, binary_result_type, choose_int_const_type};

/// Errors from the whole front end: parsing or constraint checking.
#[derive(Debug, Clone, PartialEq)]
pub enum FrontendError {
    /// A syntax error.
    Parse(ParseError),
    /// A constraint violation.
    Constraint(ConstraintViolation),
}

impl std::fmt::Display for FrontendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontendError::Parse(e) => write!(f, "{e}"),
            FrontendError::Constraint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FrontendError {}

impl From<ParseError> for FrontendError {
    fn from(e: ParseError) -> Self {
        FrontendError::Parse(e)
    }
}

impl From<ConstraintViolation> for FrontendError {
    fn from(e: ConstraintViolation) -> Self {
        FrontendError::Constraint(e)
    }
}

type DResult<T> = Result<T, ConstraintViolation>;

#[derive(Debug, Clone)]
struct Binding {
    unique: Ident,
    ty: Ctype,
    kind: IdentKind,
}

struct Desugarer<'a> {
    env: &'a ImplEnv,
    tags: TagRegistry,
    typedefs: Vec<HashMap<String, Ctype>>,
    enum_consts: Vec<HashMap<String, i128>>,
    objects: Vec<HashMap<String, Binding>>,
    functions: HashMap<String, Ctype>,
    globals: Vec<GlobalDef>,
    func_defs: Vec<FunctionDef>,
    decls: Vec<FunctionDecl>,
    rename_counter: u64,
    current_fn: Option<String>,
    anon_counter: u64,
}

/// The builtin library functions the execution environment provides; their
/// prototypes are injected so calls type-check after including the matching
/// standard header.
fn builtin_prototypes() -> Vec<(&'static str, Ctype)> {
    use IntegerType::*;
    let int = Ctype::integer(Int);
    let size_t = Ctype::integer(SizeT);
    let void_ptr = Ctype::pointer(Ctype::Void);
    let char_ptr = Ctype::pointer(Ctype::integer(Char));
    let func = |ret: Ctype, params: Vec<Ctype>, variadic: bool| {
        Ctype::Function(Box::new(ret), params, variadic)
    };
    vec![
        ("printf", func(int.clone(), vec![char_ptr.clone()], true)),
        (
            "malloc",
            func(void_ptr.clone(), vec![size_t.clone()], false),
        ),
        (
            "calloc",
            func(
                void_ptr.clone(),
                vec![size_t.clone(), size_t.clone()],
                false,
            ),
        ),
        ("free", func(Ctype::Void, vec![void_ptr.clone()], false)),
        (
            "memcpy",
            func(
                void_ptr.clone(),
                vec![void_ptr.clone(), void_ptr.clone(), size_t.clone()],
                false,
            ),
        ),
        (
            "memcmp",
            func(
                int.clone(),
                vec![void_ptr.clone(), void_ptr.clone(), size_t.clone()],
                false,
            ),
        ),
        (
            "memset",
            func(
                void_ptr.clone(),
                vec![void_ptr.clone(), int.clone(), size_t.clone()],
                false,
            ),
        ),
        (
            "strlen",
            func(size_t.clone(), vec![char_ptr.clone()], false),
        ),
        (
            "strcmp",
            func(int.clone(), vec![char_ptr.clone(), char_ptr.clone()], false),
        ),
        (
            "strcpy",
            func(
                char_ptr.clone(),
                vec![char_ptr.clone(), char_ptr.clone()],
                false,
            ),
        ),
        ("abort", func(Ctype::Void, vec![], false)),
        ("exit", func(Ctype::Void, vec![int.clone()], false)),
        ("assert", func(Ctype::Void, vec![int.clone()], false)),
    ]
}

impl<'a> Desugarer<'a> {
    fn new(env: &'a ImplEnv) -> Self {
        let mut d = Desugarer {
            env,
            tags: TagRegistry::new(),
            typedefs: vec![HashMap::new()],
            enum_consts: vec![HashMap::new()],
            objects: vec![HashMap::new()],
            functions: HashMap::new(),
            globals: Vec::new(),
            func_defs: Vec::new(),
            decls: Vec::new(),
            rename_counter: 0,
            current_fn: None,
            anon_counter: 0,
        };
        for (name, ty) in builtin_prototypes() {
            d.functions.insert(name.to_owned(), ty.clone());
            d.decls.push(FunctionDecl {
                name: Ident::new(name),
                ty,
            });
        }
        d
    }

    fn violation<T>(&self, msg: impl Into<String>, clause: &'static str, span: Span) -> DResult<T> {
        Err(ConstraintViolation::new(msg, clause, span))
    }

    // ----- scopes ----------------------------------------------------------

    fn push_scope(&mut self) {
        self.typedefs.push(HashMap::new());
        self.enum_consts.push(HashMap::new());
        self.objects.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        self.typedefs.pop();
        self.enum_consts.pop();
        self.objects.pop();
    }

    fn at_file_scope(&self) -> bool {
        self.objects.len() == 1
    }

    fn fresh_local(&mut self, name: &str) -> Ident {
        self.rename_counter += 1;
        Ident::new(format!("{name}.{}", self.rename_counter))
    }

    fn lookup_typedef(&self, name: &str) -> Option<&Ctype> {
        self.typedefs.iter().rev().find_map(|s| s.get(name))
    }

    fn lookup_enum_const(&self, name: &str) -> Option<i128> {
        self.enum_consts
            .iter()
            .rev()
            .find_map(|s| s.get(name))
            .copied()
    }

    fn lookup_object(&self, name: &str) -> Option<&Binding> {
        self.objects.iter().rev().find_map(|s| s.get(name))
    }

    fn bind_object(&mut self, source: &str, binding: Binding) {
        self.objects
            .last_mut()
            .expect("scope stack is never empty")
            .insert(source.to_owned(), binding);
    }

    // ----- types from specifiers and declarators ---------------------------

    fn type_from_specifiers(&mut self, specs: &cabs::DeclSpecifiers) -> DResult<Ctype> {
        use cabs::TypeSpecifier as TS;
        let span = specs.span;
        // Struct/union/enum/typedef specifiers are exclusive of the basic
        // specifier words.
        let mut basic: Vec<&TS> = Vec::new();
        let mut composite: Option<Ctype> = None;
        for ts in &specs.type_specifiers {
            match ts {
                TS::StructOrUnion(sou) => {
                    composite = Some(self.struct_or_union_type(sou, span)?);
                }
                TS::Enum(e) => {
                    self.define_enum(e, span)?;
                    composite = Some(Ctype::integer(IntegerType::Int));
                }
                TS::TypedefName(name) => match self.lookup_typedef(name) {
                    Some(ty) => composite = Some(ty.clone()),
                    None => {
                        return self.violation(format!("unknown type name {name}"), "6.7.8p3", span)
                    }
                },
                other => basic.push(other),
            }
        }
        if let Some(ty) = composite {
            if basic.is_empty() {
                return Ok(ty);
            }
            return self.violation(
                "struct/union/enum/typedef specifier combined with other type specifiers",
                "6.7.2p2",
                span,
            );
        }
        let count = |k: &TS| basic.iter().filter(|t| ***t == *k).count();
        let longs = count(&TS::Long);
        let unsigned = count(&TS::Unsigned) > 0;
        let signed = count(&TS::Signed) > 0;
        if unsigned && signed {
            return self.violation("both signed and unsigned in specifiers", "6.7.2p2", span);
        }
        let has = |k: &TS| count(k) > 0;
        let ty = if has(&TS::Void) {
            Ctype::Void
        } else if has(&TS::Bool) {
            Ctype::integer(IntegerType::Bool)
        } else if has(&TS::Float) || has(&TS::Double) {
            Ctype::Floating
        } else if has(&TS::Char) {
            Ctype::integer(if unsigned {
                IntegerType::UChar
            } else if signed {
                IntegerType::SChar
            } else {
                IntegerType::Char
            })
        } else if has(&TS::Short) {
            Ctype::integer(if unsigned {
                IntegerType::UShort
            } else {
                IntegerType::Short
            })
        } else if longs >= 2 {
            Ctype::integer(if unsigned {
                IntegerType::ULongLong
            } else {
                IntegerType::LongLong
            })
        } else if longs == 1 {
            Ctype::integer(if unsigned {
                IntegerType::ULong
            } else {
                IntegerType::Long
            })
        } else if has(&TS::Int) || signed || unsigned {
            Ctype::integer(if unsigned {
                IntegerType::UInt
            } else {
                IntegerType::Int
            })
        } else if basic.is_empty() {
            // No type specifier at all: implicit int is a constraint violation
            // in C11.
            return self.violation("declaration lacks a type specifier", "6.7.2p2", span);
        } else {
            return self.violation(
                "unsupported combination of type specifiers",
                "6.7.2p2",
                span,
            );
        };
        Ok(ty)
    }

    fn struct_or_union_type(
        &mut self,
        sou: &cabs::StructOrUnionSpecifier,
        span: Span,
    ) -> DResult<Ctype> {
        let kind = if sou.is_union {
            TagKind::Union
        } else {
            TagKind::Struct
        };
        let name = match &sou.name {
            Some(n) => Ident::new(n.clone()),
            None => {
                self.anon_counter += 1;
                Ident::new(format!("__anon{}", self.anon_counter))
            }
        };
        let id = match &sou.members {
            None => self.tags.declare(kind, &name),
            Some(member_decls) => {
                // Reserve the tag first so self-referential members through
                // pointers resolve.
                self.tags.declare(kind, &name);
                let mut members = Vec::new();
                for md in member_decls {
                    let base = self.type_from_specifiers(&md.specifiers)?;
                    for d in &md.declarators {
                        let (mname, mty, _) = self.apply_declarator(d, base.clone(), span)?;
                        let mname = mname.ok_or_else(|| {
                            ConstraintViolation::new(
                                "struct/union member lacks a name",
                                "6.7.2.1p2",
                                span,
                            )
                        })?;
                        members.push(Member {
                            name: Ident::new(mname),
                            ty: mty,
                        });
                    }
                }
                if members.is_empty() {
                    return self.violation(
                        "struct/union definition with no members",
                        "6.7.2.1p8",
                        span,
                    );
                }
                self.tags.define(kind, &name, members)
            }
        };
        Ok(match kind {
            TagKind::Struct => Ctype::Struct(id),
            TagKind::Union => Ctype::Union(id),
        })
    }

    fn define_enum(&mut self, spec: &cabs::EnumSpecifier, span: Span) -> DResult<()> {
        if let Some(items) = &spec.enumerators {
            let mut next = 0i128;
            for (name, value) in items {
                let v = match value {
                    Some(e) => {
                        let ail = self.desugar_expr(e)?;
                        self.const_eval_int(&ail)?
                    }
                    None => next,
                };
                if !self.env.representable(v, IntegerType::Int) {
                    return self.violation(
                        format!("enumerator {name} is not representable as an int"),
                        "6.7.2.2p2",
                        span,
                    );
                }
                self.enum_consts
                    .last_mut()
                    .expect("scope stack is never empty")
                    .insert(name.clone(), v);
                next = v + 1;
            }
        }
        Ok(())
    }

    /// Compute `(declared name, type, function parameters)` for a declarator
    /// applied to a base type (the "declaration mirrors use" rule of 6.7.6).
    #[allow(clippy::type_complexity)]
    fn apply_declarator(
        &mut self,
        d: &cabs::Declarator,
        base: Ctype,
        span: Span,
    ) -> DResult<(
        Option<String>,
        Ctype,
        Option<(Vec<(Option<String>, Ctype)>, bool)>,
    )> {
        match d {
            cabs::Declarator::Abstract => Ok((None, base, None)),
            cabs::Declarator::Ident(name, _) => Ok((Some(name.clone()), base, None)),
            cabs::Declarator::Pointer(q, inner) => {
                self.apply_declarator(inner, Ctype::Pointer(*q, Box::new(base)), span)
            }
            cabs::Declarator::Array(inner, size) => {
                let n = match size {
                    Some(e) => {
                        let ail = self.desugar_expr(e)?;
                        let v = self.const_eval_int(&ail)?;
                        if v <= 0 {
                            return self.violation(
                                "array size must be a positive constant expression",
                                "6.7.6.2p1",
                                span,
                            );
                        }
                        Some(v as u64)
                    }
                    None => None,
                };
                self.apply_declarator(inner, Ctype::Array(Box::new(base), n), span)
            }
            cabs::Declarator::Function(inner, params, variadic) => {
                let mut param_info = Vec::new();
                for p in params {
                    let pbase = self.type_from_specifiers(&p.specifiers)?;
                    let (pname, pty, _) = self.apply_declarator(&p.declarator, pbase, span)?;
                    // Parameter adjustment (6.7.6.3p7-8): arrays and functions
                    // decay to pointers.
                    param_info.push((pname, pty.decay()));
                }
                let param_types: Vec<Ctype> = param_info.iter().map(|(_, t)| t.clone()).collect();
                let fn_ty = Ctype::Function(Box::new(base), param_types, *variadic);
                let direct = matches!(
                    **inner,
                    cabs::Declarator::Ident(..) | cabs::Declarator::Abstract
                );
                let (name, ty, inner_params) = self.apply_declarator(inner, fn_ty, span)?;
                if direct {
                    Ok((name, ty, Some((param_info, *variadic))))
                } else {
                    Ok((name, ty, inner_params))
                }
            }
        }
    }

    fn type_name_to_ctype(&mut self, tn: &cabs::TypeName, span: Span) -> DResult<Ctype> {
        let base = self.type_from_specifiers(&tn.specifiers)?;
        let (_, ty, _) = self.apply_declarator(&tn.declarator, base, span)?;
        Ok(ty)
    }

    // ----- constant expressions --------------------------------------------

    /// Evaluate an integer constant expression (6.6) over the Ail form.
    fn const_eval_int(&self, e: &AilExpr) -> DResult<i128> {
        use AilExprKind::*;
        let err = || {
            ConstraintViolation::new(
                "expression is not an integer constant expression",
                "6.6p6",
                e.span,
            )
        };
        match &e.kind {
            Constant(v) => Ok(*v),
            Unary(UnOp::Minus, inner) => Ok(-self.const_eval_int(inner)?),
            Unary(UnOp::Plus, inner) => self.const_eval_int(inner),
            Unary(UnOp::BitNot, inner) => Ok(!self.const_eval_int(inner)?),
            Unary(UnOp::LogicalNot, inner) => Ok(i128::from(self.const_eval_int(inner)? == 0)),
            Binary(op, l, r) => {
                let a = self.const_eval_int(l)?;
                let b = self.const_eval_int(r)?;
                Ok(match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => {
                        if b == 0 {
                            return Err(err());
                        }
                        a / b
                    }
                    BinOp::Mod => {
                        if b == 0 {
                            return Err(err());
                        }
                        a % b
                    }
                    BinOp::Shl => a << (b.clamp(0, 127)),
                    BinOp::Shr => a >> (b.clamp(0, 127)),
                    BinOp::BitAnd => a & b,
                    BinOp::BitOr => a | b,
                    BinOp::BitXor => a ^ b,
                    BinOp::Lt => i128::from(a < b),
                    BinOp::Gt => i128::from(a > b),
                    BinOp::Le => i128::from(a <= b),
                    BinOp::Ge => i128::from(a >= b),
                    BinOp::Eq => i128::from(a == b),
                    BinOp::Ne => i128::from(a != b),
                    BinOp::LogicalAnd => i128::from(a != 0 && b != 0),
                    BinOp::LogicalOr => i128::from(a != 0 || b != 0),
                })
            }
            Conditional(c, t, f) => {
                if self.const_eval_int(c)? != 0 {
                    self.const_eval_int(t)
                } else {
                    self.const_eval_int(f)
                }
            }
            Cast(ty, inner) => {
                let v = self.const_eval_int(inner)?;
                match ty.as_integer() {
                    Some(it) => Ok(self.env.convert_int(v, it)),
                    None => Err(err()),
                }
            }
            _ => Err(err()),
        }
    }

    // ----- expressions ------------------------------------------------------

    fn rvalue_type(&self, e: &AilExpr) -> Ctype {
        e.ty.decay()
    }

    fn require_lvalue(&self, e: &AilExpr, what: &str, clause: &'static str) -> DResult<()> {
        if e.is_lvalue {
            Ok(())
        } else {
            Err(ConstraintViolation::new(
                format!("{what} requires an lvalue"),
                clause,
                e.span,
            ))
        }
    }

    fn member_type(&self, ty: &Ctype, member: &str, span: Span) -> DResult<Ctype> {
        let id = match ty {
            Ctype::Struct(id) | Ctype::Union(id) => *id,
            other => {
                return self.violation(
                    format!("member access on non-struct/union type {other}"),
                    "6.5.2.3p1",
                    span,
                )
            }
        };
        let def = self.tags.get(id).ok_or_else(|| {
            ConstraintViolation::new("member access on incomplete type", "6.5.2.3p1", span)
        })?;
        def.members
            .iter()
            .find(|m| m.name.as_str() == member)
            .map(|m| m.ty.clone())
            .ok_or_else(|| {
                ConstraintViolation::new(format!("no member named {member}"), "6.5.2.3p1", span)
            })
    }

    fn desugar_expr(&mut self, e: &cabs::Expr) -> DResult<AilExpr> {
        use cabs::Expr as CE;
        let span = e.span();
        let mk = |kind, ty, is_lvalue| AilExpr {
            kind,
            ty,
            is_lvalue,
            span,
        };
        match e {
            CE::Ident(name, _) => {
                if let Some(v) = self.lookup_enum_const(name) {
                    return Ok(mk(
                        AilExprKind::Constant(v),
                        Ctype::integer(IntegerType::Int),
                        false,
                    ));
                }
                if let Some(b) = self.lookup_object(name) {
                    return Ok(mk(
                        AilExprKind::Ident(b.unique.clone(), b.kind),
                        b.ty.clone(),
                        b.kind != IdentKind::Function,
                    ));
                }
                if let Some(fty) = self.functions.get(name) {
                    return Ok(mk(
                        AilExprKind::Ident(Ident::new(name.clone()), IdentKind::Function),
                        fty.clone(),
                        false,
                    ));
                }
                self.violation(
                    format!("use of undeclared identifier {name}"),
                    "6.5.1p2",
                    span,
                )
            }
            CE::IntConst(v, suffix, _) => {
                let IntSuffix { unsigned, longs } = *suffix;
                let it = choose_int_const_type(*v, unsigned, longs, self.env);
                Ok(mk(AilExprKind::Constant(*v), Ctype::integer(it), false))
            }
            CE::CharConst(v, _) => Ok(mk(
                AilExprKind::Constant(i128::from(*v)),
                Ctype::integer(IntegerType::Int),
                false,
            )),
            CE::FloatConst(v, _) => Ok(mk(AilExprKind::FloatConstant(*v), Ctype::Floating, false)),
            CE::StringLit(bytes, _) => {
                let len = bytes.len() as u64 + 1;
                Ok(mk(
                    AilExprKind::StringLit(bytes.clone()),
                    Ctype::array(Ctype::integer(IntegerType::Char), len),
                    true,
                ))
            }
            CE::Member(inner, name, _) => {
                let base = self.desugar_expr(inner)?;
                let mty = self.member_type(&base.ty, name, span)?;
                let lv = base.is_lvalue;
                Ok(mk(
                    AilExprKind::Member(Box::new(base), Ident::new(name.clone())),
                    mty,
                    lv,
                ))
            }
            CE::MemberPtr(inner, name, _) => {
                // p->m  ≡  (*p).m   (6.5.2.3p4)
                let base = self.desugar_expr(inner)?;
                let pty = self.rvalue_type(&base);
                let pointee = pty.pointee().cloned().ok_or_else(|| {
                    ConstraintViolation::new("-> applied to a non-pointer", "6.5.2.3p2", span)
                })?;
                let deref = mk(
                    AilExprKind::Unary(UnOp::Deref, Box::new(base)),
                    pointee.clone(),
                    true,
                );
                let mty = self.member_type(&pointee, name, span)?;
                Ok(mk(
                    AilExprKind::Member(Box::new(deref), Ident::new(name.clone())),
                    mty,
                    true,
                ))
            }
            CE::Index(arr, idx, _) => {
                // e1[e2]  ≡  *((e1) + (e2))   (6.5.2.1p2)
                let a = self.desugar_expr(arr)?;
                let i = self.desugar_expr(idx)?;
                let aty = self.rvalue_type(&a);
                let ity = self.rvalue_type(&i);
                let sum_ty = binary_result_type(BinOp::Add, &aty, &ity, self.env, span)?;
                let pointee = sum_ty.pointee().cloned().ok_or_else(|| {
                    ConstraintViolation::new(
                        "subscripted expression is not a pointer or array",
                        "6.5.2.1p1",
                        span,
                    )
                })?;
                let sum = mk(
                    AilExprKind::Binary(BinOp::Add, Box::new(a), Box::new(i)),
                    sum_ty,
                    false,
                );
                Ok(mk(
                    AilExprKind::Unary(UnOp::Deref, Box::new(sum)),
                    pointee,
                    true,
                ))
            }
            CE::Call(callee, args, _) => {
                let f = self.desugar_expr(callee)?;
                let fty = self.rvalue_type(&f);
                let (ret, params, variadic) = match &fty {
                    Ctype::Function(ret, params, variadic) => {
                        ((**ret).clone(), params.clone(), *variadic)
                    }
                    Ctype::Pointer(_, inner) => match &**inner {
                        Ctype::Function(ret, params, variadic) => {
                            ((**ret).clone(), params.clone(), *variadic)
                        }
                        _ => {
                            return self.violation(
                                "called object is not a function or function pointer",
                                "6.5.2.2p1",
                                span,
                            )
                        }
                    },
                    _ => {
                        return self.violation(
                            "called object is not a function or function pointer",
                            "6.5.2.2p1",
                            span,
                        )
                    }
                };
                let mut ail_args = Vec::with_capacity(args.len());
                for a in args {
                    ail_args.push(self.desugar_expr(a)?);
                }
                if (!params.is_empty() || !variadic)
                    && (ail_args.len() < params.len()
                        || (!variadic && ail_args.len() > params.len()))
                {
                    return self.violation(
                        format!(
                            "call supplies {} arguments but the function takes {}",
                            ail_args.len(),
                            params.len()
                        ),
                        "6.5.2.2p2",
                        span,
                    );
                }
                Ok(mk(AilExprKind::Call(Box::new(f), ail_args), ret, false))
            }
            CE::PostIncr(inner, _)
            | CE::PostDecr(inner, _)
            | CE::PreIncr(inner, _)
            | CE::PreDecr(inner, _) => {
                let op = match e {
                    CE::PostIncr(..) => UnOp::PostIncr,
                    CE::PostDecr(..) => UnOp::PostDecr,
                    CE::PreIncr(..) => UnOp::PreIncr,
                    _ => UnOp::PreDecr,
                };
                let operand = self.desugar_expr(inner)?;
                self.require_lvalue(&operand, "increment/decrement", "6.5.2.4p1")?;
                let ty = self.rvalue_type(&operand);
                if !ty.is_scalar() {
                    return self.violation(
                        "increment/decrement requires a scalar operand",
                        "6.5.2.4p1",
                        span,
                    );
                }
                Ok(mk(AilExprKind::Unary(op, Box::new(operand)), ty, false))
            }
            CE::Unary(op, inner, _) => {
                let operand = self.desugar_expr(inner)?;
                match op {
                    cabs::UnaryOp::AddressOf => {
                        if !operand.is_lvalue && !matches!(operand.ty, Ctype::Function(..)) {
                            return self.violation(
                                "& requires an lvalue or function designator",
                                "6.5.3.2p1",
                                span,
                            );
                        }
                        let ty = Ctype::pointer(operand.ty.clone());
                        Ok(mk(
                            AilExprKind::Unary(UnOp::AddressOf, Box::new(operand)),
                            ty,
                            false,
                        ))
                    }
                    cabs::UnaryOp::Deref => {
                        let pty = self.rvalue_type(&operand);
                        let pointee = pty.pointee().cloned().ok_or_else(|| {
                            ConstraintViolation::new(
                                "* applied to a non-pointer operand",
                                "6.5.3.2p2",
                                span,
                            )
                        })?;
                        let is_fn = matches!(pointee, Ctype::Function(..));
                        Ok(mk(
                            AilExprKind::Unary(UnOp::Deref, Box::new(operand)),
                            pointee,
                            !is_fn,
                        ))
                    }
                    cabs::UnaryOp::Plus | cabs::UnaryOp::Minus | cabs::UnaryOp::BitNot => {
                        let ty = self.rvalue_type(&operand);
                        let it = ty.as_integer().ok_or_else(|| {
                            ConstraintViolation::new(
                                "unary arithmetic requires an integer operand",
                                "6.5.3.3p1",
                                span,
                            )
                        })?;
                        let promoted = Ctype::integer(self.env.integer_promotion(it));
                        let un_op = match op {
                            cabs::UnaryOp::Plus => UnOp::Plus,
                            cabs::UnaryOp::Minus => UnOp::Minus,
                            _ => UnOp::BitNot,
                        };
                        Ok(mk(
                            AilExprKind::Unary(un_op, Box::new(operand)),
                            promoted,
                            false,
                        ))
                    }
                    cabs::UnaryOp::LogicalNot => {
                        let ty = self.rvalue_type(&operand);
                        if !ty.is_scalar() {
                            return self.violation(
                                "! requires a scalar operand",
                                "6.5.3.3p1",
                                span,
                            );
                        }
                        Ok(mk(
                            AilExprKind::Unary(UnOp::LogicalNot, Box::new(operand)),
                            Ctype::integer(IntegerType::Int),
                            false,
                        ))
                    }
                }
            }
            CE::SizeofExpr(inner, _) => {
                let operand = self.desugar_expr(inner)?;
                let size = layout::size_of(&operand.ty, self.env, &self.tags).map_err(|_| {
                    ConstraintViolation::new(
                        "sizeof applied to an incomplete or function type",
                        "6.5.3.4p1",
                        span,
                    )
                })?;
                Ok(mk(
                    AilExprKind::Constant(i128::from(size)),
                    Ctype::integer(IntegerType::SizeT),
                    false,
                ))
            }
            CE::SizeofType(tn, _) => {
                let ty = self.type_name_to_ctype(tn, span)?;
                let size = layout::size_of(&ty, self.env, &self.tags).map_err(|_| {
                    ConstraintViolation::new(
                        "sizeof applied to an incomplete or function type",
                        "6.5.3.4p1",
                        span,
                    )
                })?;
                Ok(mk(
                    AilExprKind::Constant(i128::from(size)),
                    Ctype::integer(IntegerType::SizeT),
                    false,
                ))
            }
            CE::AlignofType(tn, _) => {
                let ty = self.type_name_to_ctype(tn, span)?;
                let align = layout::align_of(&ty, self.env, &self.tags).map_err(|_| {
                    ConstraintViolation::new(
                        "_Alignof applied to an incomplete or function type",
                        "6.5.3.4p1",
                        span,
                    )
                })?;
                Ok(mk(
                    AilExprKind::Constant(i128::from(align)),
                    Ctype::integer(IntegerType::SizeT),
                    false,
                ))
            }
            CE::Cast(tn, inner, _) => {
                let ty = self.type_name_to_ctype(tn, span)?;
                let operand = self.desugar_expr(inner)?;
                if !ty.is_scalar() && !matches!(ty, Ctype::Void) {
                    return self.violation(
                        "cast target must be void or a scalar type",
                        "6.5.4p2",
                        span,
                    );
                }
                Ok(mk(
                    AilExprKind::Cast(ty.clone(), Box::new(operand)),
                    ty,
                    false,
                ))
            }
            CE::Binary(op, l, r, _) => {
                let bop = convert_binop(*op);
                let lhs = self.desugar_expr(l)?;
                let rhs = self.desugar_expr(r)?;
                let lty = self.rvalue_type(&lhs);
                let rty = self.rvalue_type(&rhs);
                let ty = binary_result_type(bop, &lty, &rty, self.env, span)?;
                Ok(mk(
                    AilExprKind::Binary(bop, Box::new(lhs), Box::new(rhs)),
                    ty,
                    false,
                ))
            }
            CE::Conditional(c, t, f, _) => {
                let cond = self.desugar_expr(c)?;
                if !self.rvalue_type(&cond).is_scalar() {
                    return self.violation(
                        "the first operand of ?: shall have scalar type",
                        "6.5.15p2",
                        span,
                    );
                }
                let then = self.desugar_expr(t)?;
                let els = self.desugar_expr(f)?;
                let tt = self.rvalue_type(&then);
                let ft = self.rvalue_type(&els);
                let ty = self.conditional_type(&tt, &ft, span)?;
                Ok(mk(
                    AilExprKind::Conditional(Box::new(cond), Box::new(then), Box::new(els)),
                    ty,
                    false,
                ))
            }
            CE::Assign(op, l, r, _) => {
                let lhs = self.desugar_expr(l)?;
                self.require_lvalue(&lhs, "assignment", "6.5.16p2")?;
                let rhs = self.desugar_expr(r)?;
                let lty = lhs.ty.clone();
                match op {
                    None => {
                        let rty = self.rvalue_type(&rhs);
                        if !assignable(&lty.decay(), &rty) {
                            return self.violation(
                                format!("cannot assign a value of type {rty} to an lvalue of type {lty}"),
                                "6.5.16.1p1",
                                span,
                            );
                        }
                        Ok(mk(
                            AilExprKind::Assign(Box::new(lhs), Box::new(rhs)),
                            lty,
                            false,
                        ))
                    }
                    Some(cop) => {
                        let bop = convert_binop(*cop);
                        let lt = self.rvalue_type(&lhs);
                        let rt = self.rvalue_type(&rhs);
                        // The intermediate type must exist; the result type is
                        // the lvalue's type.
                        binary_result_type(bop, &lt, &rt, self.env, span)?;
                        Ok(mk(
                            AilExprKind::CompoundAssign(bop, Box::new(lhs), Box::new(rhs)),
                            lty,
                            false,
                        ))
                    }
                }
            }
            CE::Comma(a, b, _) => {
                let lhs = self.desugar_expr(a)?;
                let rhs = self.desugar_expr(b)?;
                let ty = self.rvalue_type(&rhs);
                Ok(mk(
                    AilExprKind::Comma(Box::new(lhs), Box::new(rhs)),
                    ty,
                    false,
                ))
            }
        }
    }

    fn conditional_type(&self, t: &Ctype, f: &Ctype, span: Span) -> DResult<Ctype> {
        if let (Some(a), Some(b)) = (t.as_integer(), f.as_integer()) {
            return Ok(Ctype::integer(self.env.usual_arithmetic_conversion(a, b)));
        }
        if t == f {
            return Ok(t.clone());
        }
        match (t, f) {
            (Ctype::Pointer(..), i) if i.is_integer() => Ok(t.clone()),
            (i, Ctype::Pointer(..)) if i.is_integer() => Ok(f.clone()),
            (Ctype::Pointer(_, a), Ctype::Pointer(_, b)) => {
                if matches!(**a, Ctype::Void) {
                    Ok(f.clone())
                } else if matches!(**b, Ctype::Void) {
                    Ok(t.clone())
                } else {
                    self.violation("incompatible operand types for ?:", "6.5.15p3", span)
                }
            }
            _ if t.is_arithmetic() && f.is_arithmetic() => Ok(Ctype::Floating),
            _ => self.violation("incompatible operand types for ?:", "6.5.15p3", span),
        }
    }

    // ----- initialisers ------------------------------------------------------

    fn desugar_initializer(&mut self, init: &cabs::Initializer) -> DResult<AilInit> {
        match init {
            cabs::Initializer::Expr(e) => Ok(AilInit::Expr(self.desugar_expr(e)?)),
            cabs::Initializer::List(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.desugar_initializer(item)?);
                }
                Ok(AilInit::List(out))
            }
        }
    }

    /// Check that a scalar initialiser is assignment-compatible with the
    /// declared type (6.7.9p11: "the same type constraints ... as for simple
    /// assignment apply").
    fn check_init_compatibility(&self, ty: &Ctype, init: &AilInit, span: Span) -> DResult<()> {
        if let (true, AilInit::Expr(e)) = (ty.is_scalar(), init) {
            let from = self.rvalue_type(e);
            if !assignable(ty, &from) {
                return self.violation(
                    format!("cannot initialise an object of type {ty} with a value of type {from}"),
                    "6.7.9p11",
                    span,
                );
            }
        }
        Ok(())
    }

    // ----- declarations ------------------------------------------------------

    fn desugar_block_declaration(&mut self, decl: &cabs::Declaration) -> DResult<Vec<ObjectDecl>> {
        let base = self.type_from_specifiers(&decl.specifiers)?;
        let mut out = Vec::new();
        for init_decl in &decl.declarators {
            let (name, ty, _) =
                self.apply_declarator(&init_decl.declarator, base.clone(), decl.span)?;
            let name = name.ok_or_else(|| {
                ConstraintViolation::new("declarator lacks an identifier", "6.7p2", decl.span)
            })?;
            match decl.specifiers.storage {
                Some(StorageClass::Typedef) => {
                    self.typedefs
                        .last_mut()
                        .expect("scope stack is never empty")
                        .insert(name, ty);
                    continue;
                }
                Some(StorageClass::Static) => {
                    // A static local is an object with static storage duration
                    // under a unique name.
                    let owner = self.current_fn.clone().unwrap_or_default();
                    let unique = Ident::new(format!("{owner}.static.{name}"));
                    let init = match &init_decl.initializer {
                        Some(i) => Some(self.desugar_initializer(i)?),
                        None => None,
                    };
                    self.globals.push(GlobalDef {
                        name: unique.clone(),
                        ty: ty.clone(),
                        init,
                        span: decl.span,
                    });
                    self.bind_object(
                        &name,
                        Binding {
                            unique,
                            ty,
                            kind: IdentKind::Global,
                        },
                    );
                    continue;
                }
                Some(StorageClass::Extern) => {
                    // Reference to an object or function defined elsewhere (in
                    // this single-translation-unit setting, earlier in the
                    // file or a builtin).
                    if matches!(ty, Ctype::Function(..)) {
                        self.functions.insert(name.clone(), ty.clone());
                        self.decls.push(FunctionDecl {
                            name: Ident::new(name),
                            ty,
                        });
                    } else {
                        let unique = Ident::new(name.clone());
                        self.bind_object(
                            &name,
                            Binding {
                                unique,
                                ty,
                                kind: IdentKind::Global,
                            },
                        );
                    }
                    continue;
                }
                _ => {}
            }
            if matches!(ty, Ctype::Function(..)) {
                self.functions.insert(name.clone(), ty.clone());
                self.decls.push(FunctionDecl {
                    name: Ident::new(name),
                    ty,
                });
                continue;
            }
            let unique = self.fresh_local(&name);
            let init = match &init_decl.initializer {
                Some(i) => Some(self.desugar_initializer(i)?),
                None => None,
            };
            if let Some(init) = &init {
                self.check_init_compatibility(&ty, init, decl.span)?;
            }
            self.bind_object(
                &name,
                Binding {
                    unique: unique.clone(),
                    ty: ty.clone(),
                    kind: IdentKind::Local,
                },
            );
            out.push(ObjectDecl {
                name: unique,
                ty,
                init,
                span: decl.span,
            });
        }
        Ok(out)
    }

    fn desugar_file_scope_declaration(&mut self, decl: &cabs::Declaration) -> DResult<()> {
        let base = self.type_from_specifiers(&decl.specifiers)?;
        for init_decl in &decl.declarators {
            let (name, ty, _) =
                self.apply_declarator(&init_decl.declarator, base.clone(), decl.span)?;
            let name = name.ok_or_else(|| {
                ConstraintViolation::new("declarator lacks an identifier", "6.7p2", decl.span)
            })?;
            if decl.specifiers.storage == Some(StorageClass::Typedef) {
                self.typedefs
                    .last_mut()
                    .expect("scope stack is never empty")
                    .insert(name, ty);
                continue;
            }
            if matches!(ty, Ctype::Function(..)) {
                self.functions.insert(name.clone(), ty.clone());
                self.decls.push(FunctionDecl {
                    name: Ident::new(name),
                    ty,
                });
                continue;
            }
            // A file-scope object. `extern` without an initialiser is a
            // declaration only; with our single-translation-unit model we
            // still give it storage so the program can run.
            let unique = Ident::new(name.clone());
            let init = match &init_decl.initializer {
                Some(i) => Some(self.desugar_initializer(i)?),
                None => None,
            };
            if let Some(init) = &init {
                self.check_init_compatibility(&ty, init, decl.span)?;
            }
            let already = self.globals.iter().position(|g| g.name == unique);
            match already {
                Some(idx) => {
                    if init.is_some() {
                        self.globals[idx].init = init;
                    }
                }
                None => {
                    self.globals.push(GlobalDef {
                        name: unique.clone(),
                        ty: ty.clone(),
                        init,
                        span: decl.span,
                    });
                }
            }
            self.bind_object(
                &name,
                Binding {
                    unique,
                    ty,
                    kind: IdentKind::Global,
                },
            );
        }
        Ok(())
    }

    // ----- statements --------------------------------------------------------

    fn desugar_stmt(&mut self, s: &cabs::Statement) -> DResult<AilStmt> {
        use cabs::Statement as CS;
        match s {
            CS::Expr(None, _) => Ok(AilStmt::Skip),
            CS::Expr(Some(e), _) => Ok(AilStmt::Expr(self.desugar_expr(e)?)),
            CS::Compound(items, span) => {
                self.push_scope();
                let mut stmts = Vec::with_capacity(items.len());
                for item in items {
                    match item {
                        cabs::BlockItem::Declaration(d) => {
                            let decls = self.desugar_block_declaration(d)?;
                            if !decls.is_empty() {
                                stmts.push(AilStmt::Decl(decls));
                            }
                        }
                        cabs::BlockItem::Statement(st) => stmts.push(self.desugar_stmt(st)?),
                    }
                }
                self.pop_scope();
                Ok(AilStmt::Block(stmts, *span))
            }
            CS::If(c, t, f, _) => {
                let cond = self.desugar_expr(c)?;
                let then = self.desugar_stmt(t)?;
                let els = match f {
                    Some(stmt) => self.desugar_stmt(stmt)?,
                    None => AilStmt::Skip,
                };
                Ok(AilStmt::If(cond, Box::new(then), Box::new(els)))
            }
            CS::While(c, body, _) => {
                let cond = self.desugar_expr(c)?;
                let body = self.desugar_stmt(body)?;
                Ok(AilStmt::While(cond, Box::new(body)))
            }
            CS::DoWhile(body, c, _) => {
                let body = self.desugar_stmt(body)?;
                let cond = self.desugar_expr(c)?;
                Ok(AilStmt::DoWhile(Box::new(body), cond))
            }
            CS::For(init, cond, step, body, _) => {
                self.push_scope();
                let init_stmt = match init {
                    None => AilStmt::Skip,
                    Some(cabs::ForInit::Expr(e)) => AilStmt::Expr(self.desugar_expr(e)?),
                    Some(cabs::ForInit::Declaration(d)) => {
                        let decls = self.desugar_block_declaration(d)?;
                        AilStmt::Decl(decls)
                    }
                };
                let cond = match cond {
                    Some(c) => Some(self.desugar_expr(c)?),
                    None => None,
                };
                let step = match step {
                    Some(s) => Some(self.desugar_expr(s)?),
                    None => None,
                };
                let body = self.desugar_stmt(body)?;
                self.pop_scope();
                Ok(AilStmt::For(
                    Box::new(init_stmt),
                    cond,
                    step,
                    Box::new(body),
                ))
            }
            CS::Switch(e, body, _) => {
                let scrutinee = self.desugar_expr(e)?;
                if !self.rvalue_type(&scrutinee).is_integer() {
                    return self.violation(
                        "the controlling expression of a switch shall have integer type",
                        "6.8.4.2p1",
                        s.span(),
                    );
                }
                let body = self.desugar_stmt(body)?;
                Ok(AilStmt::Switch(scrutinee, Box::new(body)))
            }
            CS::Case(e, stmt, span) => {
                let label = self.desugar_expr(e)?;
                let value = self.const_eval_int(&label).map_err(|_| {
                    ConstraintViolation::new(
                        "case label is not an integer constant expression",
                        "6.8.4.2p3",
                        *span,
                    )
                })?;
                let stmt = self.desugar_stmt(stmt)?;
                Ok(AilStmt::Case(value, Box::new(stmt)))
            }
            CS::Default(stmt, _) => Ok(AilStmt::Default(Box::new(self.desugar_stmt(stmt)?))),
            CS::Break(_) => Ok(AilStmt::Break),
            CS::Continue(_) => Ok(AilStmt::Continue),
            CS::Return(e, _) => {
                let value = match e {
                    Some(e) => Some(self.desugar_expr(e)?),
                    None => None,
                };
                Ok(AilStmt::Return(value))
            }
            CS::Goto(label, _) => Ok(AilStmt::Goto(Ident::new(label.clone()))),
            CS::Labeled(label, stmt, _) => {
                let inner = self.desugar_stmt(stmt)?;
                Ok(AilStmt::Label(Ident::new(label.clone()), Box::new(inner)))
            }
        }
    }

    // ----- external declarations ----------------------------------------------

    fn desugar_function_definition(&mut self, def: &cabs::FunctionDefinition) -> DResult<()> {
        let base = self.type_from_specifiers(&def.specifiers)?;
        let (name, fn_ty, params) = self.apply_declarator(&def.declarator, base, def.span)?;
        let name = name.ok_or_else(|| {
            ConstraintViolation::new("function definition lacks a name", "6.9.1p2", def.span)
        })?;
        let (param_info, variadic) = params.ok_or_else(|| {
            ConstraintViolation::new(
                "function definition declarator is not a function declarator",
                "6.9.1p2",
                def.span,
            )
        })?;
        let return_ty = match &fn_ty {
            Ctype::Function(ret, _, _) => (**ret).clone(),
            _ => {
                return self.violation(
                    "function definition declarator is not a function declarator",
                    "6.9.1p2",
                    def.span,
                )
            }
        };
        self.functions.insert(name.clone(), fn_ty);
        self.current_fn = Some(name.clone());

        self.push_scope();
        let mut ail_params = Vec::with_capacity(param_info.len());
        for (pname, pty) in &param_info {
            let pname = pname.clone().ok_or_else(|| {
                ConstraintViolation::new(
                    "parameter in a function definition lacks a name",
                    "6.9.1p5",
                    def.span,
                )
            })?;
            let unique = self.fresh_local(&pname);
            self.bind_object(
                &pname,
                Binding {
                    unique: unique.clone(),
                    ty: pty.clone(),
                    kind: IdentKind::Local,
                },
            );
            ail_params.push((unique, pty.clone()));
        }
        let body = self.desugar_stmt(&def.body)?;
        self.pop_scope();
        self.current_fn = None;

        self.func_defs.push(FunctionDef {
            name: Ident::new(name),
            return_ty,
            params: ail_params,
            variadic,
            body,
            span: def.span,
        });
        Ok(())
    }

    fn run(mut self, tu: &TranslationUnit) -> DResult<AilProgram> {
        for decl in &tu.declarations {
            match decl {
                cabs::ExternalDeclaration::FunctionDefinition(def) => {
                    self.desugar_function_definition(def)?;
                }
                cabs::ExternalDeclaration::Declaration(d) => {
                    debug_assert!(self.at_file_scope());
                    self.desugar_file_scope_declaration(d)?;
                }
            }
        }
        Ok(AilProgram {
            tags: self.tags,
            globals: self.globals,
            functions: self.func_defs,
            declarations: self.decls,
        })
    }

    /// Like [`Desugarer::run`], but recovers at external-declaration
    /// granularity: a violation inside one function or file-scope declaration
    /// is recorded and desugaring resumes at the next external declaration, so
    /// a single pass can report every independently diagnosable violation.
    fn run_all(mut self, tu: &TranslationUnit) -> Result<AilProgram, Vec<ConstraintViolation>> {
        let mut violations = Vec::new();
        for decl in &tu.declarations {
            let result = match decl {
                cabs::ExternalDeclaration::FunctionDefinition(def) => {
                    self.desugar_function_definition(def)
                }
                cabs::ExternalDeclaration::Declaration(d) => {
                    debug_assert!(self.at_file_scope());
                    self.desugar_file_scope_declaration(d)
                }
            };
            if let Err(violation) = result {
                // A failed function definition may have left inner scopes
                // open; drop back to file scope before continuing.
                self.reset_to_file_scope();
                violations.push(violation);
            }
        }
        if violations.is_empty() {
            Ok(AilProgram {
                tags: self.tags,
                globals: self.globals,
                functions: self.func_defs,
                declarations: self.decls,
            })
        } else {
            Err(violations)
        }
    }

    /// Pop any scopes a mid-declaration failure left open, restoring the
    /// file-scope invariant `run_all` relies on between external declarations.
    fn reset_to_file_scope(&mut self) {
        while self.objects.len() > 1 {
            self.objects.pop();
        }
        while self.typedefs.len() > 1 {
            self.typedefs.pop();
        }
        while self.enum_consts.len() > 1 {
            self.enum_consts.pop();
        }
        self.current_fn = None;
    }
}

fn convert_binop(op: cabs::BinaryOp) -> BinOp {
    use cabs::BinaryOp as B;
    match op {
        B::Mul => BinOp::Mul,
        B::Div => BinOp::Div,
        B::Mod => BinOp::Mod,
        B::Add => BinOp::Add,
        B::Sub => BinOp::Sub,
        B::Shl => BinOp::Shl,
        B::Shr => BinOp::Shr,
        B::Lt => BinOp::Lt,
        B::Gt => BinOp::Gt,
        B::Le => BinOp::Le,
        B::Ge => BinOp::Ge,
        B::Eq => BinOp::Eq,
        B::Ne => BinOp::Ne,
        B::BitAnd => BinOp::BitAnd,
        B::BitXor => BinOp::BitXor,
        B::BitOr => BinOp::BitOr,
        B::LogicalAnd => BinOp::LogicalAnd,
        B::LogicalOr => BinOp::LogicalOr,
    }
}

/// Desugar and type-check a parsed translation unit.
///
/// # Errors
///
/// Returns the first [`ConstraintViolation`] encountered, citing the ISO C11
/// clause that the program violates.
pub fn desugar_translation_unit(
    tu: &TranslationUnit,
    env: &ImplEnv,
) -> Result<AilProgram, ConstraintViolation> {
    Desugarer::new(env).run(tu)
}

/// Desugar and type-check a parsed translation unit, collecting **all**
/// independently diagnosable constraint violations instead of stopping at the
/// first.
///
/// Recovery is at external-declaration granularity: a violation inside one
/// function or file-scope declaration abandons that declaration and resumes
/// at the next, so one pass reports one violation per broken declaration (in
/// source order). On a well-formed unit this is equivalent to
/// [`desugar_translation_unit`].
///
/// # Errors
///
/// Returns the non-empty list of violations, in source order.
pub fn desugar_translation_unit_all(
    tu: &TranslationUnit,
    env: &ImplEnv,
) -> Result<AilProgram, Vec<ConstraintViolation>> {
    Desugarer::new(env).run_all(tu)
}

/// Parse, desugar and type-check C source text in one call.
///
/// # Errors
///
/// Returns a [`FrontendError`] for syntax errors or constraint violations.
pub fn desugar(src: &str, env: &ImplEnv) -> Result<AilProgram, FrontendError> {
    let tu = cerberus_parser::parse_translation_unit(src)?;
    Ok(desugar_translation_unit(&tu, env)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> AilProgram {
        desugar(src, &ImplEnv::lp64()).unwrap()
    }

    fn run_err(src: &str) -> FrontendError {
        desugar(src, &ImplEnv::lp64()).unwrap_err()
    }

    #[test]
    fn minimal_program() {
        let p = run("int main(void) { return 0; }");
        assert!(p.has_main());
        assert_eq!(p.functions[0].return_ty, Ctype::integer(IntegerType::Int));
    }

    #[test]
    fn collect_all_reports_every_broken_declaration() {
        let src = "int f(void) { return aa; }\n\
                   int ok(void) { return 1; }\n\
                   int g(void) { return bb; }\n\
                   int main(void) { return ok(); }";
        let tu = cerberus_parser::parse_translation_unit(src).unwrap();
        let violations = desugar_translation_unit_all(&tu, &ImplEnv::lp64()).unwrap_err();
        assert_eq!(violations.len(), 2, "violations: {violations:?}");
        assert!(violations[0].message().contains("aa"));
        assert!(violations[1].message().contains("bb"));
        // In source order.
        assert!(
            violations[0].diagnostic.span.start.line <= violations[1].diagnostic.span.start.line
        );
    }

    #[test]
    fn collect_all_agrees_with_first_error_mode_on_well_formed_units() {
        let src = "int main(void) { int x = 40; return x + 2; }";
        let tu = cerberus_parser::parse_translation_unit(src).unwrap();
        let all = desugar_translation_unit_all(&tu, &ImplEnv::lp64()).unwrap();
        let first = desugar_translation_unit(&tu, &ImplEnv::lp64()).unwrap();
        assert_eq!(all.functions.len(), first.functions.len());
        assert_eq!(all.globals.len(), first.globals.len());
    }

    #[test]
    fn globals_are_collected_in_order() {
        let p = run("int y = 2, x = 1; int main(void) { return x + y; }");
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.globals[0].name.as_str(), "y");
        assert_eq!(p.globals[1].name.as_str(), "x");
    }

    #[test]
    fn locals_are_renamed_uniquely() {
        let p = run("int main(void) { int x = 1; { int x = 2; x = 3; } return x; }");
        let body = format!("{:?}", p.functions[0].body);
        // Two distinct unique names derived from `x`.
        assert!(body.contains("x.1"));
        assert!(body.contains("x.2"));
    }

    #[test]
    fn enums_become_integer_constants() {
        let p = run("enum colour { RED, GREEN = 5, BLUE }; int main(void) { return BLUE; }");
        let body = format!("{:?}", p.functions[0].body);
        assert!(body.contains("Constant(6)"));
    }

    #[test]
    fn subscripts_are_rewritten_to_deref_of_addition() {
        let p = run("int main(void) { int a[3]; return a[2]; }");
        let body = format!("{:?}", p.functions[0].body);
        assert!(body.contains("Deref"));
        assert!(body.contains("Add"));
    }

    #[test]
    fn arrow_is_rewritten_to_member_of_deref() {
        let p = run("struct s { int v; };\n\
             int get(struct s *p) { return p->v; }");
        let body = format!("{:?}", p.functions[0].body);
        assert!(body.contains("Member"));
        assert!(body.contains("Deref"));
    }

    #[test]
    fn sizeof_is_folded_to_a_size_t_constant() {
        let p = run("int main(void) { return (int)sizeof(long); }");
        let body = format!("{:?}", p.functions[0].body);
        assert!(body.contains("Constant(8)"));
    }

    #[test]
    fn typedefs_resolve() {
        let p = run("typedef unsigned long word; word w = 3; int main(void) { return (int)w; }");
        assert_eq!(p.globals[0].ty, Ctype::integer(IntegerType::ULong));
    }

    #[test]
    fn struct_definitions_enter_the_registry() {
        let p =
            run("struct point { int x; int y; }; struct point origin; int main(void){return 0;}");
        assert_eq!(p.tags.iter().count(), 1);
        let (_, def) = p.tags.iter().next().unwrap();
        assert_eq!(def.members.len(), 2);
    }

    #[test]
    fn static_locals_become_globals() {
        let p = run("int counter(void) { static int n = 0; n = n + 1; return n; } int main(void) { return counter(); }");
        assert!(p
            .globals
            .iter()
            .any(|g| g.name.as_str().contains("static.n")));
    }

    #[test]
    fn builtin_calls_typecheck() {
        run(
            "#include <stdio.h>\n#include <stdlib.h>\n\
             int main(void) { int *p = malloc(sizeof(int)); *p = 3; printf(\"%d\\n\", *p); free(p); return 0; }",
        );
    }

    #[test]
    fn undeclared_identifier_is_a_violation() {
        let e = run_err("int main(void) { return zz; }");
        let FrontendError::Constraint(c) = e else {
            panic!("expected constraint violation")
        };
        assert_eq!(c.iso_clause(), "6.5.1p2");
    }

    #[test]
    fn shift_of_pointer_is_a_violation() {
        let e = run_err("int main(void) { int x = 0; int *p = &x; return (int)(p << 1); }");
        let FrontendError::Constraint(c) = e else {
            panic!("expected constraint violation")
        };
        assert_eq!(c.iso_clause(), "6.5.7p2");
    }

    #[test]
    fn assignment_to_rvalue_is_a_violation() {
        let e = run_err("int main(void) { 3 = 4; return 0; }");
        let FrontendError::Constraint(c) = e else {
            panic!("expected constraint violation")
        };
        assert_eq!(c.iso_clause(), "6.5.16p2");
    }

    #[test]
    fn incompatible_pointer_assignment_is_a_violation() {
        let e = run_err("int main(void) { int x; char *p = &x; return 0; }");
        // Initialisation constraints follow those of assignment; we reject at
        // the declaration (6.7.9p11 via 6.5.16.1p1) or assignment clause.
        assert!(matches!(e, FrontendError::Constraint(_)));
    }

    #[test]
    fn call_arity_is_checked() {
        let e = run_err("int f(int a) { return a; } int main(void) { return f(1, 2); }");
        let FrontendError::Constraint(c) = e else {
            panic!("expected constraint violation")
        };
        assert_eq!(c.iso_clause(), "6.5.2.2p2");
    }

    #[test]
    fn case_labels_fold() {
        let p = run(
            "int main(void) { int x = 2; switch (x) { case 1 + 1: return 1; default: return 0; } }",
        );
        let body = format!("{:?}", p.functions[0].body);
        assert!(body.contains("Case(2"));
    }

    #[test]
    fn string_literals_have_array_type() {
        let p = run("int main(void) { char *s = \"hi\"; return s[0]; }");
        let body = format!("{:?}", p.functions[0].body);
        assert!(body.contains("StringLit"));
    }

    #[test]
    fn provenance_example_desugars() {
        run("#include <stdio.h>\n#include <string.h>\n\
             int y=2, x=1;\n\
             int main() {\n\
               int *p = &x + 1;\n\
               int *q = &y;\n\
               printf(\"Addresses: p=%p q=%p\\n\",(void*)p,(void*)q);\n\
               if (memcmp(&p, &q, sizeof(p)) == 0) {\n\
                 *p = 11;\n\
                 printf(\"x=%d y=%d *p=%d *q=%d\\n\",x,y,*p,*q);\n\
               }\n\
               return 0;\n\
             }");
    }

    #[test]
    fn unsigned_comparison_example_types() {
        // The §5.5 example: -1 < (unsigned int)0 — the comparison is done at
        // unsigned int after the usual arithmetic conversions.
        let p = run("int main(void) { return -1 < (unsigned int)0; }");
        assert!(p.has_main());
    }

    #[test]
    fn function_pointers_desugar() {
        run("int add(int a, int b) { return a + b; }\n\
             int main(void) { int (*f)(int, int) = add; return f(2, 3); }");
    }

    #[test]
    fn for_loop_with_declaration() {
        run("int main(void) { int acc = 0; for (int i = 0; i < 4; i++) acc += i; return acc; }");
    }

    #[test]
    fn goto_and_labels_survive() {
        let p = run("int main(void) { int x = 0; goto done; x = 1; done: return x; }");
        let body = format!("{:?}", p.functions[0].body);
        assert!(body.contains("Goto"));
        assert!(body.contains("Label"));
    }

    #[test]
    fn incompatible_conditional_arms_are_rejected() {
        let e = run_err(
            "struct a { int x; }; struct b { int y; };\n\
             struct a ga; struct b gb;\n\
             int main(void) { int c = 1; return (c ? ga : gb).x; }",
        );
        assert!(matches!(e, FrontendError::Constraint(_)));
    }

    #[test]
    fn unions_desugar() {
        let p = run("union u { int i; char bytes[4]; };\n\
             int main(void) { union u v; v.i = 258; return v.bytes[0]; }");
        assert_eq!(p.tags.iter().count(), 1);
    }
}
