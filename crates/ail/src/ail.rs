//! The Ail abstract syntax: desugared, scoped, and type-annotated C.
//!
//! Every expression node carries its C type and whether it designates an
//! lvalue; identifiers have been made unique per translation unit; enums have
//! been replaced by integer constants; `e1[e2]` has been rewritten to
//! `*(e1 + e2)` (6.5.2.1p2) and `p->m` to `(*p).m` (6.5.2.3p4); and the many
//! syntactic forms of declarations have been normalised into object and
//! function definitions with canonical [`Ctype`]s.

use cerberus_ast::ctype::Ctype;
use cerberus_ast::ident::Ident;
use cerberus_ast::layout::TagRegistry;
use cerberus_ast::loc::Span;

/// Unary operators surviving into Ail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `&e` — address of an lvalue or function designator.
    AddressOf,
    /// `*e` — indirection.
    Deref,
    /// `+e`.
    Plus,
    /// `-e`.
    Minus,
    /// `~e`.
    BitNot,
    /// `!e`.
    LogicalNot,
    /// `e++` (value is the old value; the increment is a side effect).
    PostIncr,
    /// `e--`.
    PostDecr,
    /// `++e`.
    PreIncr,
    /// `--e`.
    PreDecr,
}

/// Binary operators surviving into Ail (logical `&&`/`||` keep their
/// short-circuit sequencing, so they stay distinct from the bitwise ops).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `*`.
    Mul,
    /// `/`.
    Div,
    /// `%`.
    Mod,
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `<<`.
    Shl,
    /// `>>`.
    Shr,
    /// `<`.
    Lt,
    /// `>`.
    Gt,
    /// `<=`.
    Le,
    /// `>=`.
    Ge,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `&`.
    BitAnd,
    /// `^`.
    BitXor,
    /// `|`.
    BitOr,
    /// `&&`.
    LogicalAnd,
    /// `||`.
    LogicalOr,
}

impl BinOp {
    /// Whether the operator is a relational or equality comparison, whose
    /// result type is `int`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// Whether the operator is `&&` or `||`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::LogicalAnd | BinOp::LogicalOr)
    }
}

/// How an identifier was classified during desugaring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdentKind {
    /// An object with automatic storage duration (local or parameter).
    Local,
    /// An object with static storage duration (global or static local after
    /// renaming).
    Global,
    /// A function designator.
    Function,
}

/// A type-annotated expression.
#[derive(Debug, Clone, PartialEq)]
pub struct AilExpr {
    /// The expression constructor.
    pub kind: AilExprKind,
    /// The C type of the expression *before* lvalue conversion (so an `int`
    /// variable use has type `int` and `is_lvalue` true).
    pub ty: Ctype,
    /// Whether the expression designates an lvalue.
    pub is_lvalue: bool,
    /// Source span.
    pub span: Span,
}

/// Expression constructors.
#[derive(Debug, Clone, PartialEq)]
pub enum AilExprKind {
    /// A use of a declared identifier (unique per translation unit).
    Ident(Ident, IdentKind),
    /// An integer constant with the type recorded in [`AilExpr::ty`].
    Constant(i128),
    /// A floating constant (parsed, never evaluated).
    FloatConstant(f64),
    /// A string literal (a static array-of-char object).
    StringLit(Vec<u8>),
    /// A unary operator application.
    Unary(UnOp, Box<AilExpr>),
    /// A binary operator application.
    Binary(BinOp, Box<AilExpr>, Box<AilExpr>),
    /// Simple assignment `l = r`.
    Assign(Box<AilExpr>, Box<AilExpr>),
    /// Compound assignment `l op= r`.
    CompoundAssign(BinOp, Box<AilExpr>, Box<AilExpr>),
    /// `c ? t : f`.
    Conditional(Box<AilExpr>, Box<AilExpr>, Box<AilExpr>),
    /// An explicit cast `(T)e`.
    Cast(Ctype, Box<AilExpr>),
    /// A function call.
    Call(Box<AilExpr>, Vec<AilExpr>),
    /// Member selection `e.m` (after `->` has been rewritten away).
    Member(Box<AilExpr>, Ident),
    /// `a, b`.
    Comma(Box<AilExpr>, Box<AilExpr>),
}

impl AilExpr {
    /// Whether this expression is a compile-time integer constant (used by
    /// the front end when folding array sizes, enum values and case labels).
    pub fn is_integer_constant(&self) -> bool {
        matches!(self.kind, AilExprKind::Constant(_))
    }
}

/// A (possibly aggregate) initialiser after desugaring.
#[derive(Debug, Clone, PartialEq)]
pub enum AilInit {
    /// A scalar initialiser expression.
    Expr(AilExpr),
    /// A brace-enclosed initialiser list for an array or struct.
    List(Vec<AilInit>),
}

/// An object declaration within a block.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectDecl {
    /// The unique name of the object.
    pub name: Ident,
    /// Its declared type.
    pub ty: Ctype,
    /// Its initialiser, if any.
    pub init: Option<AilInit>,
    /// Source span of the declarator.
    pub span: Span,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum AilStmt {
    /// The empty statement.
    Skip,
    /// An expression evaluated for its effects.
    Expr(AilExpr),
    /// A block: a new scope containing a sequence of statements.
    Block(Vec<AilStmt>, Span),
    /// Declarations of block-scoped objects, in source order.
    Decl(Vec<ObjectDecl>),
    /// `if`.
    If(AilExpr, Box<AilStmt>, Box<AilStmt>),
    /// `while`.
    While(AilExpr, Box<AilStmt>),
    /// `do … while`.
    DoWhile(Box<AilStmt>, AilExpr),
    /// `for` (the init clause has already been made a statement).
    For(Box<AilStmt>, Option<AilExpr>, Option<AilExpr>, Box<AilStmt>),
    /// `switch`.
    Switch(AilExpr, Box<AilStmt>),
    /// `case k:` — the label value has been constant-folded.
    Case(i128, Box<AilStmt>),
    /// `default:`.
    Default(Box<AilStmt>),
    /// `break;`.
    Break,
    /// `continue;`.
    Continue,
    /// `return;` / `return e;`.
    Return(Option<AilExpr>),
    /// `goto label;`.
    Goto(Ident),
    /// `label: stmt`.
    Label(Ident, Box<AilStmt>),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDef {
    /// The function name (not renamed; external linkage).
    pub name: Ident,
    /// Return type.
    pub return_ty: Ctype,
    /// Parameters: unique name and type, in order.
    pub params: Vec<(Ident, Ctype)>,
    /// Whether the prototype was variadic (only builtins are).
    pub variadic: bool,
    /// The body (a block).
    pub body: AilStmt,
    /// Source span.
    pub span: Span,
}

/// An object with static storage duration.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDef {
    /// Unique name.
    pub name: Ident,
    /// Declared type.
    pub ty: Ctype,
    /// Initialiser, if any. Objects with static storage duration and no
    /// initialiser are zero-initialised (6.7.9p10).
    pub init: Option<AilInit>,
    /// Source span.
    pub span: Span,
}

/// A declared-but-undefined function (a prototype), kept so calls can be
/// type-checked; calling one at runtime that is not a builtin is an error.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDecl {
    /// The function name.
    pub name: Ident,
    /// Its type (always a [`Ctype::Function`]).
    pub ty: Ctype,
}

/// A desugared, type-annotated translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AilProgram {
    /// All struct/union definitions.
    pub tags: TagRegistry,
    /// Objects with static storage duration, in declaration order.
    pub globals: Vec<GlobalDef>,
    /// Function definitions.
    pub functions: Vec<FunctionDef>,
    /// Function declarations without definitions (builtins and prototypes).
    pub declarations: Vec<FunctionDecl>,
}

impl AilProgram {
    /// Find a function definition by source name.
    pub fn function(&self, name: &str) -> Option<&FunctionDef> {
        self.functions.iter().find(|f| f.name.as_str() == name)
    }

    /// Find a global by (unique) name.
    pub fn global(&self, name: &str) -> Option<&GlobalDef> {
        self.globals.iter().find(|g| g.name.as_str() == name)
    }

    /// Whether the program defines `main`.
    pub fn has_main(&self) -> bool {
        self.function("main").is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerberus_ast::ctype::IntegerType;

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(BinOp::Ne.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::LogicalAnd.is_logical());
        assert!(!BinOp::BitAnd.is_logical());
    }

    #[test]
    fn program_lookup_helpers() {
        let mut p = AilProgram::default();
        assert!(!p.has_main());
        p.functions.push(FunctionDef {
            name: Ident::new("main"),
            return_ty: Ctype::integer(IntegerType::Int),
            params: vec![],
            variadic: false,
            body: AilStmt::Skip,
            span: Span::synthetic(),
        });
        assert!(p.has_main());
        assert!(p.function("main").is_some());
        assert!(p.function("other").is_none());
    }

    #[test]
    fn constant_detection() {
        let c = AilExpr {
            kind: AilExprKind::Constant(4),
            ty: Ctype::integer(IntegerType::Int),
            is_lvalue: false,
            span: Span::synthetic(),
        };
        assert!(c.is_integer_constant());
    }
}
