//! Ail: the desugared, type-annotated intermediate AST of the Cerberus
//! pipeline.
//!
//! The Cabs-to-Ail pass (§5.1 of the paper) "handles many intricate aspects
//! that might be omitted in a small calculus but have to be considered for
//! real C": identifier scoping, function prototypes and definitions,
//! normalisation of syntactic C types into canonical forms, string literals,
//! enums (replaced by integers), and loop normalisation. The type checker then
//! adds explicit type annotations, identifying the violated part of the
//! standard on failure. Both passes "operate without requiring any commitment
//! to how C-standard implementation-defined choices are resolved" — except
//! that type *sizes* are needed to fold `sizeof`, so the implementation-defined
//! environment is an explicit parameter.
//!
//! # Example
//!
//! ```
//! use cerberus_ail::desugar::desugar_translation_unit;
//! use cerberus_ast::env::ImplEnv;
//! use cerberus_parser::parse_translation_unit;
//!
//! let tu = parse_translation_unit("int main(void) { int x = 1; return x + 1; }").unwrap();
//! let program = desugar_translation_unit(&tu, &ImplEnv::lp64()).unwrap();
//! assert_eq!(program.functions.len(), 1);
//! ```

pub mod ail;
pub mod desugar;
pub mod typing;

pub use ail::{
    AilExpr, AilExprKind, AilInit, AilProgram, AilStmt, BinOp, FunctionDef, GlobalDef, ObjectDecl,
    UnOp,
};
pub use desugar::{desugar, desugar_translation_unit};
pub use typing::choose_int_const_type;
