//! A small decision procedure for the path constraints accumulated by the
//! path-sensitive abstract interpreter.
//!
//! The constraint language is deliberately tiny — exactly what the
//! interpreter's branch conditions produce:
//!
//! * **difference/interval atoms** `x + a ⋈ y + b` and `x + a ⋈ c` for
//!   `⋈ ∈ {==, !=, <, <=, >, >=}`, over symbolic integer variables
//!   ([`SymId`]) that stand for unknown run-time values and symbolic
//!   allocation base addresses;
//! * **range atoms** `lo <= x + a <= hi` (and their negation), produced by
//!   `IsRepresentable` guards around integer conversions;
//! * **uninterpreted predicates** such as `live(a)` or `from_int(p)`,
//!   which only interact with their own negation.
//!
//! Satisfiability of the conjunction is decided by Bellman–Ford
//! negative-cycle detection over the difference graph (the classic
//! difference-constraint reduction), and a satisfying model is read off
//! the shortest-path potentials. `!=` atoms are checked against the model
//! and repaired by small perturbations; when repair fails the verdict is
//! [`Verdict::Unknown`], which the interpreter treats as "feasible" so
//! pruning stays sound.
//!
//! Solved constraint sets are memoised under a *canonical key*: atoms are
//! normalised, variables renumbered in first-occurrence order, and the set
//! sorted and deduplicated — the CLP memoization idea (Johnson), so
//! subgoals shared across paths, procedures and fixtures are decided once.
//! The memo table is owned by a [`Solver`] that can be shared (it is
//! internally synchronised), letting a whole corpus run reuse verdicts;
//! hit/miss counters surface in the session cache statistics.

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A symbolic integer variable: an unknown run-time value (a parameter, the
/// result of an unknown load or conversion) or an allocation base address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymId(pub u32);

impl fmt::Display for SymId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A linear term `var + k` (or the constant `k` when `var` is `None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Term {
    /// The symbolic variable, if any.
    pub var: Option<SymId>,
    /// The constant addend.
    pub k: i128,
}

impl Term {
    /// The constant term `k`.
    pub fn constant(k: i128) -> Term {
        Term { var: None, k }
    }

    /// The term `v + k`.
    pub fn var(v: SymId, k: i128) -> Term {
        Term { var: Some(v), k }
    }
}

/// A comparison relation between two terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rel {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Rel {
    /// The relation holding exactly when `self` does not.
    pub fn negate(self) -> Rel {
        match self {
            Rel::Eq => Rel::Ne,
            Rel::Ne => Rel::Eq,
            Rel::Lt => Rel::Ge,
            Rel::Le => Rel::Gt,
            Rel::Gt => Rel::Le,
            Rel::Ge => Rel::Lt,
        }
    }

    fn symbol(self) -> &'static str {
        match self {
            Rel::Eq => "==",
            Rel::Ne => "!=",
            Rel::Lt => "<",
            Rel::Le => "<=",
            Rel::Gt => ">",
            Rel::Ge => ">=",
        }
    }
}

/// One path-constraint atom.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Atom {
    /// `lhs ⋈ rhs` over linear terms.
    Cmp {
        /// Left-hand term.
        lhs: Term,
        /// The relation.
        rel: Rel,
        /// Right-hand term.
        rhs: Term,
    },
    /// `lo <= term <= hi` when `positive`, `term < lo || term > hi`
    /// otherwise (an `IsRepresentable` guard and its negation).
    InRange {
        /// The constrained term.
        term: Term,
        /// Inclusive lower bound.
        lo: i128,
        /// Inclusive upper bound.
        hi: i128,
        /// Whether the term is inside (true) or outside (false) the range.
        positive: bool,
    },
    /// An uninterpreted predicate over the memory state, e.g. `live(a)` or
    /// `from_int(p)`. Interacts only with its own negation.
    Pred {
        /// Predicate text, e.g. `live(a)`.
        name: String,
        /// Whether the predicate is asserted (true) or refuted (false).
        positive: bool,
    },
}

impl Atom {
    /// The logical negation of this atom.
    pub fn negate(&self) -> Atom {
        match self {
            Atom::Cmp { lhs, rel, rhs } => Atom::Cmp {
                lhs: *lhs,
                rel: rel.negate(),
                rhs: *rhs,
            },
            Atom::InRange {
                term,
                lo,
                hi,
                positive,
            } => Atom::InRange {
                term: *term,
                lo: *lo,
                hi: *hi,
                positive: !positive,
            },
            Atom::Pred { name, positive } => Atom::Pred {
                name: name.clone(),
                positive: !positive,
            },
        }
    }

    /// Every symbolic variable mentioned by the atom, in syntactic order.
    fn vars(&self, out: &mut Vec<SymId>) {
        match self {
            Atom::Cmp { lhs, rhs, .. } => {
                if let Some(v) = lhs.var {
                    out.push(v);
                }
                if let Some(v) = rhs.var {
                    out.push(v);
                }
            }
            Atom::InRange { term, .. } => {
                if let Some(v) = term.var {
                    out.push(v);
                }
            }
            Atom::Pred { .. } => {}
        }
    }

    /// Render the atom with `names` resolving symbolic variables.
    pub fn render(&self, names: &dyn Fn(SymId) -> String) -> String {
        let term = |t: &Term| match t.var {
            None => t.k.to_string(),
            Some(v) => {
                let base = names(v);
                match t.k {
                    0 => base,
                    k if k > 0 => format!("{base} + {k}"),
                    k => format!("{base} - {}", -k),
                }
            }
        };
        match self {
            Atom::Cmp { lhs, rel, rhs } => {
                format!("{} {} {}", term(lhs), rel.symbol(), term(rhs))
            }
            Atom::InRange {
                term: t,
                lo,
                hi,
                positive,
            } => {
                if *positive {
                    format!("{} in [{lo}, {hi}]", term(t))
                } else {
                    format!("{} outside [{lo}, {hi}]", term(t))
                }
            }
            Atom::Pred { name, positive } => {
                if *positive {
                    name.clone()
                } else {
                    format!("!{name}")
                }
            }
        }
    }
}

/// A satisfying assignment of symbolic variables found by the solver; any
/// variable not listed is unconstrained (any value works).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    /// Variable bindings, sorted by variable.
    pub bindings: BTreeMap<SymId, i128>,
    /// Uninterpreted predicates that must hold (`(name, truth)`).
    pub predicates: BTreeMap<String, bool>,
}

/// The solver's answer for one conjunction of atoms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Satisfiable, with a witness assignment.
    Sat(Model),
    /// No assignment satisfies the conjunction.
    Unsat,
    /// The decision procedure could not settle the question (treated as
    /// feasible by the interpreter, so pruning stays sound).
    Unknown,
}

impl Verdict {
    /// Whether the path may be feasible (anything but a definite `Unsat`).
    pub fn feasible(&self) -> bool {
        !matches!(self, Verdict::Unsat)
    }
}

/// The result of one [`Solver::solve`] call, including whether it was
/// answered from the memo table.
#[derive(Debug, Clone)]
pub struct Solved {
    /// The satisfiability verdict.
    pub verdict: Verdict,
    /// Whether the canonical key was already memoised.
    pub from_memo: bool,
}

/// Cumulative counters for a shared solver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Memo-table hits.
    pub hits: u64,
    /// Memo-table misses (each one ran the decision procedure).
    pub misses: u64,
    /// Entries currently memoised.
    pub entries: usize,
}

/// A memoising difference-constraint solver, shareable across threads and
/// across translation units (the Johnson CLP-memoization line: solved
/// subgoals are cached under canonicalised keys).
#[derive(Debug, Default)]
pub struct Solver {
    memo: Mutex<HashMap<Vec<Atom>, Verdict>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Cap on memoised constraint sets; beyond it the table is cleared
/// (generational eviction, matching the session caches).
const MEMO_CAPACITY: usize = 4096;

impl Solver {
    /// Decide satisfiability of the conjunction `atoms`, consulting and
    /// updating the memo table.
    pub fn solve(&self, atoms: &[Atom]) -> Solved {
        let key = canonicalise(atoms);
        {
            let memo = self.memo.lock().unwrap();
            if let Some(verdict) = memo.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Solved {
                    verdict: decanonicalise(verdict, atoms),
                    from_memo: true,
                };
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let verdict = decide(&key);
        let mut memo = self.memo.lock().unwrap();
        if memo.len() >= MEMO_CAPACITY {
            memo.clear();
        }
        memo.insert(key, verdict.clone());
        drop(memo);
        Solved {
            verdict: decanonicalise(&verdict, atoms),
            from_memo: false,
        }
    }

    /// Counters and table size.
    pub fn stats(&self) -> SolverStats {
        SolverStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.memo.lock().unwrap().len(),
        }
    }
}

/// Canonicalise a conjunction: normalise each atom (constant on the right,
/// variable pairs ordered), sort, deduplicate, then renumber variables in
/// first-occurrence order so alpha-equivalent sets share one memo entry.
fn canonicalise(atoms: &[Atom]) -> Vec<Atom> {
    let mut normalised: Vec<Atom> = atoms.iter().map(normalise).collect();
    normalised.sort();
    normalised.dedup();
    // Renumber in first-occurrence order over the *sorted* set, so the key is
    // independent of insertion order.
    let mut rename: BTreeMap<SymId, SymId> = BTreeMap::new();
    let mut order: Vec<SymId> = Vec::new();
    for atom in &normalised {
        atom.vars(&mut order);
    }
    for v in order {
        let next = SymId(rename.len() as u32);
        rename.entry(v).or_insert(next);
    }
    let rewrite = |t: &Term| Term {
        var: t.var.map(|v| rename[&v]),
        k: t.k,
    };
    normalised
        .iter()
        .map(|atom| match atom {
            Atom::Cmp { lhs, rel, rhs } => Atom::Cmp {
                lhs: rewrite(lhs),
                rel: *rel,
                rhs: rewrite(rhs),
            },
            Atom::InRange {
                term,
                lo,
                hi,
                positive,
            } => Atom::InRange {
                term: rewrite(term),
                lo: *lo,
                hi: *hi,
                positive: *positive,
            },
            Atom::Pred { .. } => atom.clone(),
        })
        .collect()
}

/// Rewrite an atom into canonical shape: `Cmp` with `Gt`/`Ge` flipped to
/// `Lt`/`Le`, a lone constant moved to the right-hand side, and
/// variable-variable atoms ordered by variable id.
fn normalise(atom: &Atom) -> Atom {
    match atom {
        Atom::Cmp { lhs, rel, rhs } => {
            let (mut lhs, mut rel, mut rhs) = (*lhs, *rel, *rhs);
            // Flip `>` and `>=` so only {Eq, Ne, Lt, Le} remain.
            if matches!(rel, Rel::Gt | Rel::Ge) {
                std::mem::swap(&mut lhs, &mut rhs);
                rel = match rel {
                    Rel::Gt => Rel::Lt,
                    Rel::Ge => Rel::Le,
                    r => r,
                };
            }
            // Keep the variable (or the smaller variable) on the left for the
            // symmetric relations.
            let should_swap = match (lhs.var, rhs.var) {
                (None, Some(_)) => matches!(rel, Rel::Eq | Rel::Ne),
                (Some(a), Some(b)) => matches!(rel, Rel::Eq | Rel::Ne) && b < a,
                _ => false,
            };
            if should_swap {
                std::mem::swap(&mut lhs, &mut rhs);
            }
            // Fold constants: x + a ⋈ y + b  ≡  x + (a - b) ⋈ y.
            if lhs.var.is_some() {
                lhs.k -= rhs.k;
                rhs.k = 0;
            }
            Atom::Cmp { lhs, rel, rhs }
        }
        Atom::InRange {
            term,
            lo,
            hi,
            positive,
        } => Atom::InRange {
            term: Term {
                var: term.var,
                k: 0,
            },
            lo: lo - term.k,
            hi: hi - term.k,
            positive: *positive,
        },
        Atom::Pred { .. } => atom.clone(),
    }
}

/// Map a verdict over canonical variables back to the caller's variables.
fn decanonicalise(verdict: &Verdict, original: &[Atom]) -> Verdict {
    let Verdict::Sat(model) = verdict else {
        return verdict.clone();
    };
    // Reconstruct the same renaming canonicalise used.
    let normalised = canonical_order(original);
    let mut bindings = BTreeMap::new();
    for (canonical, caller) in normalised {
        if let Some(value) = model.bindings.get(&canonical) {
            bindings.insert(caller, *value);
        }
    }
    Verdict::Sat(Model {
        bindings,
        predicates: model.predicates.clone(),
    })
}

/// The `(canonical, caller)` variable pairing canonicalise produces.
fn canonical_order(atoms: &[Atom]) -> Vec<(SymId, SymId)> {
    let mut normalised: Vec<Atom> = atoms.iter().map(normalise).collect();
    normalised.sort();
    normalised.dedup();
    let mut rename: BTreeMap<SymId, SymId> = BTreeMap::new();
    let mut order: Vec<SymId> = Vec::new();
    for atom in &normalised {
        atom.vars(&mut order);
    }
    for v in order {
        let next = SymId(rename.len() as u32);
        rename.entry(v).or_insert(next);
    }
    rename
        .into_iter()
        .map(|(caller, canon)| (canon, caller))
        .collect()
}

/// Index of the virtual zero node in the difference graph.
const ZERO: usize = 0;

/// Decide a canonicalised conjunction.
///
/// Difference atoms become edges of a constraint graph with a virtual zero
/// node; Bellman–Ford either finds a negative cycle (`Unsat`) or yields
/// shortest-path potentials, which — shifted so the zero node maps to 0 —
/// are a satisfying assignment of all `<=`-convertible atoms. `!=` atoms
/// and negated ranges are then checked against (and, if needed, repaired
/// into) the model.
fn decide(atoms: &[Atom]) -> Verdict {
    // Contradicting uninterpreted predicates: p && !p.
    let mut predicates: BTreeMap<String, bool> = BTreeMap::new();
    for atom in atoms {
        if let Atom::Pred { name, positive } = atom {
            match predicates.entry(name.clone()) {
                Entry::Vacant(slot) => {
                    slot.insert(*positive);
                }
                Entry::Occupied(prior) => {
                    if prior.get() != positive {
                        return Verdict::Unsat;
                    }
                }
            }
        }
    }

    // Collect variables; node 0 is the virtual zero.
    let mut vars: Vec<SymId> = Vec::new();
    for atom in atoms {
        atom.vars(&mut vars);
    }
    vars.sort();
    vars.dedup();
    let node = |v: Option<SymId>| -> usize {
        match v {
            None => ZERO,
            Some(v) => 1 + vars.binary_search(&v).unwrap(),
        }
    };
    let n = vars.len() + 1;

    // Edges (u, v, w) encode x_v - x_u <= w.
    let mut edges: Vec<(usize, usize, i128)> = Vec::new();
    // Deferred disequalities (lhs, rhs) and negated ranges.
    let mut disequalities: Vec<(Term, Term)> = Vec::new();
    let mut outside: Vec<(Term, i128, i128)> = Vec::new();
    let le = |lhs: Term, rhs: Term, edges: &mut Vec<(usize, usize, i128)>| {
        // lhs.var + lhs.k <= rhs.var + rhs.k
        //   ≡  lhs.var - rhs.var <= rhs.k - lhs.k.
        edges.push((node(rhs.var), node(lhs.var), rhs.k - lhs.k));
    };
    for atom in atoms {
        match atom {
            Atom::Cmp { lhs, rel, rhs } => match rel {
                Rel::Le => le(*lhs, *rhs, &mut edges),
                Rel::Lt => le(
                    Term {
                        var: lhs.var,
                        k: lhs.k + 1,
                    },
                    *rhs,
                    &mut edges,
                ),
                Rel::Ge => le(*rhs, *lhs, &mut edges),
                Rel::Gt => le(
                    Term {
                        var: rhs.var,
                        k: rhs.k + 1,
                    },
                    *lhs,
                    &mut edges,
                ),
                Rel::Eq => {
                    le(*lhs, *rhs, &mut edges);
                    le(*rhs, *lhs, &mut edges);
                }
                Rel::Ne => {
                    if lhs.var.is_none() && rhs.var.is_none() {
                        if lhs.k == rhs.k {
                            return Verdict::Unsat;
                        }
                    } else {
                        disequalities.push((*lhs, *rhs));
                    }
                }
            },
            Atom::InRange {
                term,
                lo,
                hi,
                positive,
            } => {
                if lo > hi {
                    if *positive {
                        return Verdict::Unsat;
                    }
                    continue; // an empty range excludes nothing
                }
                if *positive {
                    le(Term::constant(*lo), *term, &mut edges);
                    le(*term, Term::constant(*hi), &mut edges);
                } else {
                    match term.var {
                        None => {
                            if (*lo..=*hi).contains(&term.k) {
                                return Verdict::Unsat;
                            }
                        }
                        Some(_) => outside.push((*term, *lo, *hi)),
                    }
                }
            }
            Atom::Pred { .. } => {}
        }
    }

    // Bellman–Ford from a virtual source connected to every node with
    // weight 0 (equivalently: start all distances at 0).
    let mut dist = vec![0i128; n];
    for round in 0..n {
        let mut changed = false;
        for &(u, v, w) in &edges {
            if dist[u].saturating_add(w) < dist[v] {
                dist[v] = dist[u].saturating_add(w);
                changed = true;
            }
        }
        if !changed {
            break;
        }
        if round == n - 1 {
            return Verdict::Unsat; // relaxation still live after n rounds
        }
    }

    // dist satisfies dist[v] <= dist[u] + w for every edge, i.e. every
    // difference constraint; shift so the zero node is 0.
    let shift = dist[ZERO];
    let value_of = |t: &Term, assign: &[i128]| -> i128 {
        match t.var {
            None => t.k,
            Some(v) => assign[node(Some(v))] + t.k,
        }
    };
    let mut assign: Vec<i128> = dist.iter().map(|d| d - shift).collect();

    // Repair disequalities and negated ranges by perturbing single
    // variables; each perturbation must be re-checked against everything.
    let satisfied = |assign: &[i128]| -> bool {
        disequalities
            .iter()
            .all(|(l, r)| value_of(l, assign) != value_of(r, assign))
            && outside
                .iter()
                .all(|(t, lo, hi)| !(*lo..=*hi).contains(&value_of(t, assign)))
            && edges.iter().all(|&(u, v, w)| assign[v] - assign[u] <= w)
    };
    if !satisfied(&assign) {
        // Try nudging each variable by small offsets.
        let mut fixed = false;
        'search: for idx in 1..n {
            let original = assign[idx];
            for delta in [1, -1, 2, -2, 3, -3, 5, -5, 7, -7, 11, -11] {
                assign[idx] = original + delta;
                if satisfied(&assign) {
                    fixed = true;
                    break 'search;
                }
            }
            assign[idx] = original;
        }
        if !fixed {
            // The perturbation heuristic failed; decide Unsat vs Unknown by
            // bounding the offending terms with shortest paths. sp(u)[v] is
            // the tightest provable upper bound on x_v - x_u (finite paths
            // only — negative cycles were already ruled out above).
            let sp = |src: usize| -> Vec<Option<i128>> {
                let mut d: Vec<Option<i128>> = vec![None; n];
                d[src] = Some(0);
                for _ in 0..n {
                    let mut changed = false;
                    for &(u, v, w) in &edges {
                        if let Some(du) = d[u] {
                            let cand = du.saturating_add(w);
                            if d[v].is_none_or(|dv| cand < dv) {
                                d[v] = Some(cand);
                                changed = true;
                            }
                        }
                    }
                    if !changed {
                        break;
                    }
                }
                d
            };
            let table: Vec<Vec<Option<i128>>> = (0..n).map(sp).collect();
            // x == y && x != y (possibly through folded offsets): the
            // difference l - r is forced to exactly zero.
            for (l, r) in &disequalities {
                let (nl, nr) = (node(l.var), node(r.var));
                let ub = table[nr][nl].map(|d| d + l.k - r.k);
                let lb = table[nl][nr].map(|d| -d + l.k - r.k);
                if ub == Some(0) && lb == Some(0) {
                    return Verdict::Unsat;
                }
            }
            // A negated range whose positive constraints confine the term
            // entirely inside [lo, hi].
            for (t, lo, hi) in &outside {
                let v = node(t.var);
                let ub = table[ZERO][v].map(|d| d + t.k);
                let lb = table[v][ZERO].map(|d| -d + t.k);
                if let (Some(lbv), Some(ubv)) = (lb, ub) {
                    if lbv >= *lo && ubv <= *hi {
                        return Verdict::Unsat;
                    }
                }
            }
            return Verdict::Unknown;
        }
    }

    let bindings = vars.iter().map(|v| (*v, assign[node(Some(*v))])).collect();
    Verdict::Sat(Model {
        bindings,
        predicates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> SymId {
        SymId(0)
    }
    fn y() -> SymId {
        SymId(1)
    }

    fn cmp(lhs: Term, rel: Rel, rhs: Term) -> Atom {
        Atom::Cmp { lhs, rel, rhs }
    }

    #[test]
    fn empty_conjunction_is_sat() {
        let solver = Solver::default();
        assert!(matches!(solver.solve(&[]).verdict, Verdict::Sat(_)));
    }

    #[test]
    fn contradictory_equalities_are_unsat() {
        let solver = Solver::default();
        let atoms = [
            cmp(Term::var(x(), 0), Rel::Eq, Term::constant(0)),
            cmp(Term::var(x(), 0), Rel::Eq, Term::constant(1)),
        ];
        assert_eq!(solver.solve(&atoms).verdict, Verdict::Unsat);
    }

    #[test]
    fn equality_yields_a_binding_model() {
        let solver = Solver::default();
        let atoms = [cmp(Term::var(x(), 0), Rel::Eq, Term::constant(42))];
        match solver.solve(&atoms).verdict {
            Verdict::Sat(model) => assert_eq!(model.bindings.get(&x()), Some(&42)),
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn strict_cycle_is_unsat() {
        // x < y && y < x.
        let solver = Solver::default();
        let atoms = [
            cmp(Term::var(x(), 0), Rel::Lt, Term::var(y(), 0)),
            cmp(Term::var(y(), 0), Rel::Lt, Term::var(x(), 0)),
        ];
        assert_eq!(solver.solve(&atoms).verdict, Verdict::Unsat);
    }

    #[test]
    fn difference_chain_model_satisfies_all_atoms() {
        // x + 4 == y && y <= 10 && x >= 2.
        let solver = Solver::default();
        let atoms = [
            cmp(Term::var(x(), 4), Rel::Eq, Term::var(y(), 0)),
            cmp(Term::var(y(), 0), Rel::Le, Term::constant(10)),
            cmp(Term::var(x(), 0), Rel::Ge, Term::constant(2)),
        ];
        match solver.solve(&atoms).verdict {
            Verdict::Sat(model) => {
                let xv = model.bindings[&x()];
                let yv = model.bindings[&y()];
                assert_eq!(xv + 4, yv);
                assert!(yv <= 10 && xv >= 2, "x={xv} y={yv}");
            }
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn disequality_is_repaired() {
        // x >= 0 && x != 0 has models; the potentials give x = 0, so the
        // repair loop must nudge it.
        let solver = Solver::default();
        let atoms = [
            cmp(Term::var(x(), 0), Rel::Ge, Term::constant(0)),
            cmp(Term::var(x(), 0), Rel::Ne, Term::constant(0)),
        ];
        match solver.solve(&atoms).verdict {
            Verdict::Sat(model) => {
                let xv = model.bindings[&x()];
                assert!(xv > 0, "x={xv}");
            }
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn forced_equal_disequality_is_unsat() {
        let solver = Solver::default();
        let atoms = [
            cmp(Term::var(x(), 0), Rel::Eq, Term::var(y(), 0)),
            cmp(Term::var(x(), 0), Rel::Ne, Term::var(y(), 0)),
        ];
        assert_eq!(solver.solve(&atoms).verdict, Verdict::Unsat);
    }

    #[test]
    fn range_and_its_negation_conflict() {
        let solver = Solver::default();
        let range = Atom::InRange {
            term: Term::var(x(), 0),
            lo: -128,
            hi: 127,
            positive: true,
        };
        let atoms = [range.clone(), range.negate()];
        assert_eq!(solver.solve(&atoms).verdict, Verdict::Unsat);
    }

    #[test]
    fn negated_range_model_is_outside() {
        let solver = Solver::default();
        let atoms = [Atom::InRange {
            term: Term::var(x(), 0),
            lo: 0,
            hi: 3,
            positive: false,
        }];
        match solver.solve(&atoms).verdict {
            Verdict::Sat(model) => {
                let xv = model.bindings[&x()];
                assert!(!(0..=3).contains(&xv), "x={xv}");
            }
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn predicate_conflicts_with_its_negation() {
        let solver = Solver::default();
        let live = Atom::Pred {
            name: "live(a)".into(),
            positive: true,
        };
        assert_eq!(
            solver.solve(&[live.clone(), live.negate()]).verdict,
            Verdict::Unsat
        );
        assert!(solver.solve(&[live]).verdict.feasible());
    }

    #[test]
    fn alpha_equivalent_sets_share_a_memo_entry() {
        let solver = Solver::default();
        let first = [cmp(Term::var(SymId(7), 0), Rel::Eq, Term::constant(1))];
        let second = [cmp(Term::var(SymId(99), 0), Rel::Eq, Term::constant(1))];
        let a = solver.solve(&first);
        let b = solver.solve(&second);
        assert!(!a.from_memo);
        assert!(b.from_memo, "alpha-equivalent query must hit the memo");
        let stats = solver.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        // The Sat model is mapped back to the caller's variables.
        match b.verdict {
            Verdict::Sat(model) => {
                assert_eq!(model.bindings.get(&SymId(99)), Some(&1))
            }
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn insertion_order_does_not_change_the_key() {
        let solver = Solver::default();
        let a = cmp(Term::var(x(), 0), Rel::Le, Term::constant(5));
        let b = cmp(Term::var(y(), 0), Rel::Ge, Term::constant(2));
        solver.solve(&[a.clone(), b.clone()]);
        let again = solver.solve(&[b, a]);
        assert!(again.from_memo, "permuted conjunction must hit the memo");
    }

    #[test]
    fn one_past_base_adjacency_is_satisfiable_with_layout_witness() {
        // base(a) + size(a) == base(b): the one-past-vs-adjacent-base layout.
        let solver = Solver::default();
        let atoms = [cmp(Term::var(x(), 4), Rel::Eq, Term::var(y(), 0))];
        match solver.solve(&atoms).verdict {
            Verdict::Sat(model) => {
                assert_eq!(
                    model.bindings[&x()] + 4,
                    model.bindings[&y()],
                    "layout witness must realise adjacency"
                );
            }
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn renders_terms_with_names() {
        let atom = cmp(Term::var(x(), 4), Rel::Eq, Term::var(y(), 0));
        let names = |v: SymId| {
            if v == x() {
                "base(a)".to_owned()
            } else {
                "base(b)".to_owned()
            }
        };
        assert_eq!(atom.render(&names), "base(a) + 4 == base(b)");
    }
}
