//! Path-sensitive abstract interpretation of Core programs.
//!
//! The abstract domain mirrors what the dynamic memory object models track
//! concretely: which allocation a pointer refers to (a finite points-to set
//! over abstract allocation ids, plus an "unknown provenance" element for
//! pointers forged from integers), the byte offset within that allocation,
//! whether the allocation is still live, and whether its bytes have been
//! initialised. Undefined behaviour surfaces in two ways:
//!
//! * **explicitly** — the elaboration compiles C-level UB into guarded
//!   [`PExpr::Undef`] nodes (arithmetic overflow, division by zero, shift
//!   ranges, unspecified-value `case` arms). The interpreter explores both
//!   branches of every condition it cannot decide, so a reachable `Undef`
//!   becomes a `May` finding and an unconditionally reachable one a `Must`
//!   finding;
//! * **implicitly** — memory actions are checked against the abstract state
//!   (null or dead targets, out-of-bounds offsets, stores to string literals,
//!   frees of non-heap or already-dead allocations, unsequenced conflicting
//!   accesses), the checks the models perform at runtime.
//!
//! In the default [`AnalysisMode::PathSensitive`] mode, unknown run-time
//! values (parameters, unknown loads, allocation base addresses, pointer
//! comparisons over distinct objects) are tracked as symbolic variables
//! ([`crate::solver::SymId`]). Branching on a condition involving such a
//! value pushes a constraint [`Atom`] onto the current path, and the
//! [`Solver`] decides feasibility: infeasible arms are pruned outright, a
//! fork whose other arm is infeasible keeps definiteness (the `May` → `Must`
//! flip), and findings that fire definitely in *every* feasible sibling stay
//! `Must` across the merge. Each finding records the path constraints active
//! when it fired: a `Must` finding turns them into a satisfying *witness*
//! assignment (a concrete layout/value choice realising the UB), a `May`
//! finding reports them as the residual constraint under which the UB fires.
//! The [`AnalysisMode::FlowJoin`] mode keeps PR 7's join-everything
//! behaviour as a differential baseline; path-sensitive results are a
//! refinement of it (checked by a property test at the workspace root).
//!
//! The pass is deliberately a *may*-analysis: when the state cannot exclude a
//! violation it reports `May` rather than staying silent, because the corpus
//! contract (see `tests/analysis_soundness.rs`) is one-directional — every
//! dynamically observed UB kind must be statically reported. Precision has
//! its own dual contract (`tests/analysis_precision.rs`): every `Must`
//! finding must be realised dynamically by at least one named model.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use cerberus_ast::ctype::{Ctype, IntegerType};
use cerberus_ast::env::ImplEnv;
use cerberus_ast::ident::Ident;
use cerberus_ast::layout;
use cerberus_ast::loc::Span;
use cerberus_ast::ub::UbKind;
use cerberus_core::program::CoreProgram;
use cerberus_core::syntax::{Binop, BuiltinFn, Expr, MemAction, PExpr, Pattern, Polarity, PtrOp};

use crate::solver::{Atom, Model, Rel, Solver, SymId, Term, Verdict};
use crate::{
    AnalysisConfig, AnalysisMode, AnalysisReport, FindingSeverity, StaticFinding, Witness,
};

/// Index into [`State::allocs`].
type AllocId = usize;

/// Storage class of an abstract allocation, which decides which operations on
/// it are legal (stores to string literals, frees of non-heap objects).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StorageKind {
    /// An automatic-storage object (`create`).
    Stack,
    /// A dynamic allocation (`alloc` / `malloc` / `calloc`).
    Heap,
    /// A static-storage object.
    Static,
    /// A string-literal object (read-only by 6.4.5p7).
    StringLit,
}

/// Abstract lifetime of an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lifetime {
    Live,
    Dead,
    MaybeDead,
}

impl Lifetime {
    fn join(self, other: Lifetime) -> Lifetime {
        if self == other {
            self
        } else {
            Lifetime::MaybeDead
        }
    }
}

/// Abstract initialisation of an allocation's bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InitState {
    Uninit,
    Init,
    MaybeInit,
}

impl InitState {
    fn join(self, other: InitState) -> InitState {
        if self == other {
            self
        } else {
            InitState::MaybeInit
        }
    }

    /// Weakened by a store the analyzer cannot prove covers the whole object.
    fn touched(self) -> InitState {
        match self {
            InitState::Init => InitState::Init,
            _ => InitState::MaybeInit,
        }
    }
}

/// An abstract pointer: a points-to set with an offset, plus escape hatches
/// for null and for pointers whose provenance the analyzer lost.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct AbsPtr {
    /// Allocations the pointer may refer to.
    targets: BTreeSet<AllocId>,
    /// The pointer may refer to an allocation outside `targets` (unknown
    /// provenance).
    any: bool,
    /// The pointer may be null.
    null: bool,
    /// The pointer was (possibly) forged from an integer (`ptrFromInt` with
    /// no tracked provenance).
    from_int: bool,
    /// Byte offset into the target, when there is exactly one and it is
    /// known.
    offset: Option<i128>,
    /// A function designator, for `Ccall` through a pointer value.
    func: Option<String>,
}

impl AbsPtr {
    fn null_ptr() -> AbsPtr {
        AbsPtr {
            null: true,
            ..AbsPtr::default()
        }
    }

    fn wild() -> AbsPtr {
        AbsPtr {
            any: true,
            null: true,
            ..AbsPtr::default()
        }
    }

    fn to_target(id: AllocId) -> AbsPtr {
        AbsPtr {
            targets: BTreeSet::from([id]),
            offset: Some(0),
            ..AbsPtr::default()
        }
    }

    fn function(name: &Ident) -> AbsPtr {
        AbsPtr {
            func: Some(name.as_str().to_owned()),
            ..AbsPtr::default()
        }
    }

    /// Exactly one known target, nothing else possible.
    fn single(&self) -> Option<AllocId> {
        if self.targets.len() == 1 && !self.any && !self.null {
            self.targets.iter().next().copied()
        } else {
            None
        }
    }

    fn definitely_null(&self) -> bool {
        self.null && self.targets.is_empty() && !self.any && self.func.is_none()
    }

    fn join(&self, other: &AbsPtr) -> AbsPtr {
        AbsPtr {
            targets: self.targets.union(&other.targets).copied().collect(),
            any: self.any || other.any,
            null: self.null || other.null,
            from_int: self.from_int || other.from_int,
            offset: if self.offset == other.offset {
                self.offset
            } else {
                None
            },
            func: if self.func == other.func {
                self.func.clone()
            } else {
                None
            },
        }
    }

    fn with_offset(&self, offset: Option<i128>) -> AbsPtr {
        AbsPtr {
            offset,
            ..self.clone()
        }
    }
}

/// Abstract Core values. `Top` is "any value"; loaded values are wrapped in
/// `Spec`/`Unspec` exactly as the concrete interpreter wraps them in
/// `Specified`/`Unspecified`.
#[derive(Debug, Clone, PartialEq)]
enum AbsValue {
    Top,
    Unit,
    Bool {
        val: Option<bool>,
        /// The path-constraint atom this boolean decides, when the value is
        /// unknown but expressible over symbolic variables; branching on it
        /// pushes the atom (or its negation) onto the path.
        atom: Option<Box<Atom>>,
    },
    Int {
        val: Option<i128>,
        /// Symbolic handle: the (unknown) value is `sym + k` for the path
        /// constraint solver.
        sym: Option<(SymId, i128)>,
        /// Provenance carried through `intFromPtr` and arithmetic, so a
        /// round-tripped pointer keeps its points-to set.
        prov: Option<AbsPtr>,
    },
    Ctype(Ctype),
    Ptr(AbsPtr),
    Tuple(Vec<AbsValue>),
    Spec(Box<AbsValue>),
    Unspec(Option<Ctype>),
}

impl AbsValue {
    fn int(val: i128) -> AbsValue {
        AbsValue::Int {
            val: Some(val),
            sym: None,
            prov: None,
        }
    }

    fn unknown_int() -> AbsValue {
        AbsValue::Int {
            val: None,
            sym: None,
            prov: None,
        }
    }

    fn bool_known(val: Option<bool>) -> AbsValue {
        AbsValue::Bool { val, atom: None }
    }

    fn bool_atom(atom: Option<Atom>) -> AbsValue {
        AbsValue::Bool {
            val: None,
            atom: atom.map(Box::new),
        }
    }

    fn spec(v: AbsValue) -> AbsValue {
        AbsValue::Spec(Box::new(v))
    }

    fn join(&self, other: &AbsValue) -> AbsValue {
        use AbsValue::*;
        match (self, other) {
            (a, b) if a == b => a.clone(),
            (Spec(a), Spec(b)) => AbsValue::spec(a.join(b)),
            (Bool { .. }, Bool { .. }) => Bool {
                val: None,
                atom: None,
            },
            (
                Int {
                    val: v1,
                    sym: s1,
                    prov: p1,
                },
                Int {
                    val: v2,
                    sym: s2,
                    prov: p2,
                },
            ) => Int {
                val: if v1 == v2 { *v1 } else { None },
                sym: if s1 == s2 { *s1 } else { None },
                prov: match (p1, p2) {
                    (None, None) => None,
                    (Some(a), Some(b)) => Some(a.join(b)),
                    (Some(a), None) | (None, Some(a)) => Some(AbsPtr {
                        any: true,
                        ..a.clone()
                    }),
                },
            },
            (Ptr(a), Ptr(b)) => Ptr(a.join(b)),
            (Unspec(_), Unspec(_)) => Unspec(None),
            (Tuple(xs), Tuple(ys)) if xs.len() == ys.len() => {
                Tuple(xs.iter().zip(ys).map(|(x, y)| x.join(y)).collect())
            }
            _ => Top,
        }
    }
}

/// One abstract allocation.
#[derive(Debug, Clone, PartialEq)]
struct AllocInfo {
    kind: StorageKind,
    /// Declared C type, when the allocation came from `create` (heap
    /// allocations have none).
    ty: Option<Ctype>,
    /// Size in bytes, when known.
    size: Option<u64>,
    life: Lifetime,
    init: InitState,
    /// Whole-object value for strong updates; `Top` once imprecise.
    content: AbsValue,
    /// The C type of the last store, for effective-type checks on reads
    /// (union punning, reuse of heap memory at another type).
    last_store: Option<Ctype>,
    /// Display name for diagnostics.
    name: String,
}

impl AllocInfo {
    fn join_from(&mut self, other: &AllocInfo) {
        self.life = self.life.join(other.life);
        self.init = self.init.join(other.init);
        self.content = self.content.join(&other.content);
        if self.last_store != other.last_store {
            self.last_store = None;
        }
    }
}

/// The abstract memory state: allocations are identified by creation index,
/// which is deterministic because analysis order is deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
struct State {
    allocs: Vec<AllocInfo>,
}

impl State {
    fn join_from(&mut self, other: &State) {
        let shared = self.allocs.len().min(other.allocs.len());
        for i in 0..shared {
            self.allocs[i].join_from(&other.allocs[i]);
        }
        if other.allocs.len() > self.allocs.len() {
            self.allocs.extend(other.allocs[shared..].iter().cloned());
        }
    }
}

/// One recorded memory access, for unsequenced-race detection.
#[derive(Debug, Clone)]
struct AbsAccess {
    targets: BTreeSet<AllocId>,
    any: bool,
    write: bool,
    /// From a negative-polarity action (e.g. the store of a postfix
    /// increment), the only kind weak sequencing leaves unsequenced.
    negative: bool,
}

/// Abstract control flow, mirroring the concrete interpreter's `Flow`.
#[derive(Debug, Clone)]
enum AFlow {
    Val(AbsValue),
    Jump(Ident),
    Ret,
}

type Env = HashMap<String, AbsValue>;

/// A pattern-match arm selected for abstract evaluation: the arm index, the
/// bindings the match would introduce, and whether the match is definite
/// (`true`) or merely possible (`false`).
type SelectedArm = (usize, Vec<(String, AbsValue)>, bool);

/// Result of matching a pattern against an abstract value.
enum MatchQ {
    Yes(Vec<(String, AbsValue)>),
    Maybe(Vec<(String, AbsValue)>),
    No,
}

/// One finding as recorded during exploration; severity and witness are
/// derived when the run finishes.
#[derive(Debug, Clone)]
struct LocalFinding {
    /// Fires on every path through its innermost fork (relative certainty;
    /// absolute `Must` additionally needs every enclosing fork to agree).
    definite: bool,
    detail: String,
    /// Path constraints active when the finding fired, plus any predicate
    /// enrichment (`from_int(p)`, `live(a)`); the witness/residual source.
    path: Vec<Atom>,
}

/// Findings of one fork branch, merged into the parent when siblings join.
type Frame = BTreeMap<(String, UbKind), LocalFinding>;

struct Interp<'a> {
    program: &'a CoreProgram,
    ienv: &'a ImplEnv,
    config: AnalysisConfig,
    solver: &'a Solver,
    state: State,
    globals: HashMap<String, AbsValue>,
    /// Fork-scoped finding frames; the bottom frame survives the whole run
    /// and is flushed into [`StaticFinding`]s at the end.
    finding_frames: Vec<Frame>,
    steps: usize,
    budget_exhausted: bool,
    cur_proc: String,
    call_stack: Vec<String>,
    /// False once evaluation is under an imprecision the fork machinery does
    /// not model (loop widening, exit joins); findings are then `May` at
    /// best. In flow mode this also covers every undecided branch.
    definite: bool,
    /// State snapshots registered at `run l` sites, consumed by the matching
    /// `save`/`exit`.
    jump_states: HashMap<String, State>,
    /// Footprint frames for unsequenced-race detection.
    fp_stack: Vec<Vec<AbsAccess>>,
    /// Accumulated return values of the call being analyzed.
    ret_stack: Vec<Option<AbsValue>>,
    /// Display names of minted symbolic variables, indexed by [`SymId`].
    sym_names: Vec<String>,
    /// Lazily minted base-address variables per allocation.
    base_syms: HashMap<AllocId, SymId>,
    /// Boolean-valued symbols linked to a pointer atom: the symbol is 1
    /// exactly when the atom holds, so integer tests on it recover the atom.
    linked_syms: HashMap<u32, Atom>,
    /// Constraints of the path currently being explored.
    path: Vec<Atom>,
    paths_explored: usize,
    paths_pruned: usize,
    solver_queries: u64,
    solver_memo_hits: u64,
}

/// Run the abstract interpreter over every procedure of `program`.
pub(crate) fn run(
    program: &CoreProgram,
    env: &ImplEnv,
    config: AnalysisConfig,
    solver: &Solver,
) -> AnalysisReport {
    let mut it = Interp {
        program,
        ienv: env,
        config,
        solver,
        state: State::default(),
        globals: HashMap::new(),
        finding_frames: vec![Frame::new()],
        steps: 0,
        budget_exhausted: false,
        cur_proc: String::new(),
        call_stack: Vec::new(),
        definite: true,
        jump_states: HashMap::new(),
        fp_stack: Vec::new(),
        ret_stack: Vec::new(),
        sym_names: Vec::new(),
        base_syms: HashMap::new(),
        linked_syms: HashMap::new(),
        path: Vec::new(),
        paths_explored: 0,
        paths_pruned: 0,
        solver_queries: 0,
        solver_memo_hits: 0,
    };
    it.setup_globals();
    let base_state = it.state.clone();
    let mut names: Vec<&String> = program.procs.keys().collect();
    names.sort();
    let entry = program.main.as_ref().map(|m| m.as_str().to_owned());
    for name in &names {
        it.state = base_state.clone();
        it.jump_states.clear();
        it.path.clear();
        // A Must finding claims every execution hits the UB. For procedures
        // other than the entry point, the standalone analysis does not know
        // the call context (or whether the procedure runs at all), so its
        // findings cap at May in path mode; calls inlined from `main` still
        // produce Must findings for the same procedure, and the strongest
        // severity per (proc, kind) wins. Flow mode keeps the historical
        // everything-definite-at-top behaviour.
        it.definite = match it.config.mode {
            AnalysisMode::FlowJoin => true,
            AnalysisMode::PathSensitive => match &entry {
                Some(main) => main == *name,
                None => true,
            },
        };
        it.analyze_proc(name);
    }
    debug_assert_eq!(it.finding_frames.len(), 1, "unbalanced finding frames");
    let base = it.finding_frames.pop().unwrap_or_default();
    let mut findings = Vec::new();
    for ((proc, ub), lf) in base {
        let (severity, witness) = it.classify(&lf);
        findings.push(StaticFinding {
            ub,
            severity,
            span: Span::synthetic(),
            iso_clause: ub.iso_reference(),
            proc,
            witness,
            detail: lf.detail,
        });
    }
    AnalysisReport {
        violations: Vec::new(),
        findings,
        procs_analyzed: names.len(),
        steps_used: it.steps,
        budget_exhausted: it.budget_exhausted,
        aborted: None,
        paths_explored: it.paths_explored,
        paths_pruned: it.paths_pruned,
        solver_queries: it.solver_queries,
        solver_memo_hits: it.solver_memo_hits,
    }
}

impl<'a> Interp<'a> {
    // ----- findings and budget ---------------------------------------------------

    fn path_mode(&self) -> bool {
        self.config.mode == AnalysisMode::PathSensitive
    }

    fn finding(&mut self, ub: UbKind, must_candidate: bool, detail: impl Into<String>) {
        self.finding_with(ub, must_candidate, detail, Vec::new());
    }

    /// Record a finding, optionally enriched with predicate atoms that feed
    /// the rendered witness/residual (they never join the solved path).
    fn finding_with(
        &mut self,
        ub: UbKind,
        must_candidate: bool,
        detail: impl Into<String>,
        extra: Vec<Atom>,
    ) {
        let definite = must_candidate && self.definite;
        let mut path = self.path.clone();
        path.extend(extra);
        let lf = LocalFinding {
            definite,
            detail: detail.into(),
            path,
        };
        self.record_local((self.cur_proc.clone(), ub), lf);
    }

    /// Merge one finding into the innermost frame: a definite finding
    /// replaces a tentative one; otherwise the earliest record wins.
    fn record_local(&mut self, key: (String, UbKind), lf: LocalFinding) {
        let frame = self.finding_frames.last_mut().expect("finding frame");
        match frame.get_mut(&key) {
            Some(existing) => {
                if lf.definite && !existing.definite {
                    *existing = lf;
                }
            }
            None => {
                frame.insert(key, lf);
            }
        }
    }

    /// Merge the finding frames of `branches` feasible fork siblings into the
    /// parent frame: a finding stays definite only if it fired definitely in
    /// every sibling; anything else downgrades to tentative (→ `May`).
    fn merge_sibling_findings(&mut self, branches: Vec<Frame>) {
        let n = branches.len();
        let mut merged: BTreeMap<(String, UbKind), (LocalFinding, usize)> = BTreeMap::new();
        for frame in branches {
            for (key, lf) in frame {
                match merged.get_mut(&key) {
                    None => {
                        let definite_count = usize::from(lf.definite);
                        merged.insert(key, (lf, definite_count));
                    }
                    Some((best, definite_count)) => {
                        if lf.definite {
                            *definite_count += 1;
                            if !best.definite {
                                *best = lf;
                            }
                        }
                    }
                }
            }
        }
        for (key, (mut lf, definite_count)) in merged {
            lf.definite = lf.definite && definite_count == n;
            self.record_local(key, lf);
        }
    }

    /// Severity and witness of a finished finding. Definite findings become
    /// `Must` and carry a satisfying assignment of their path constraints
    /// (empty = the UB fires unconditionally); tentative ones become `May`
    /// and carry the residual constraint set.
    fn classify(&mut self, lf: &LocalFinding) -> (FindingSeverity, Witness) {
        if lf.definite {
            let verdict = if lf.path.is_empty() {
                None
            } else {
                Some(self.query_solver(&lf.path))
            };
            let names = |v: SymId| {
                self.sym_names
                    .get(v.0 as usize)
                    .cloned()
                    .unwrap_or_else(|| v.to_string())
            };
            let assignment = match verdict {
                Some(Verdict::Sat(Model {
                    bindings,
                    predicates,
                })) => bindings
                    .into_iter()
                    .map(|(v, value)| (names(v), value))
                    .chain(
                        predicates
                            .into_iter()
                            .map(|(name, truth)| (name, i128::from(truth))),
                    )
                    .collect(),
                // A definite finding with an unsolvable path (the fork
                // machinery only keeps feasible paths, so this is at
                // worst Unknown): claim the unconditional witness.
                _ => Vec::new(),
            };
            (FindingSeverity::Must, Witness::Assignment(assignment))
        } else {
            let names = |v: SymId| {
                self.sym_names
                    .get(v.0 as usize)
                    .cloned()
                    .unwrap_or_else(|| v.to_string())
            };
            let mut seen = BTreeSet::new();
            let residual = lf
                .path
                .iter()
                .map(|a| a.render(&names))
                .filter(|r| seen.insert(r.clone()))
                .collect();
            (FindingSeverity::May, Witness::Residual(residual))
        }
    }

    /// One solver call, with the interpreter-side counters updated.
    fn query_solver(&mut self, atoms: &[Atom]) -> Verdict {
        let solved = self.solver.solve(atoms);
        self.solver_queries += 1;
        if solved.from_memo {
            self.solver_memo_hits += 1;
        }
        solved.verdict
    }

    /// Whether the current path (with `atom` appended, if given) is feasible.
    fn path_feasible(&mut self) -> bool {
        if self.path.is_empty() {
            return true;
        }
        let atoms = self.path.clone();
        self.query_solver(&atoms).feasible()
    }

    /// Mint a fresh symbolic variable (path mode only).
    fn mint_sym(&mut self, name: String) -> Option<(SymId, i128)> {
        if !self.path_mode() {
            return None;
        }
        let id = SymId(self.sym_names.len() as u32);
        self.sym_names.push(name);
        Some((id, 0))
    }

    /// The base-address variable of allocation `id`, minted on first use.
    fn base_sym(&mut self, id: AllocId) -> Option<SymId> {
        if !self.path_mode() {
            return None;
        }
        if let Some(s) = self.base_syms.get(&id) {
            return Some(*s);
        }
        let name = format!("base({})", self.state.allocs[id].name);
        let s = SymId(self.sym_names.len() as u32);
        self.sym_names.push(name);
        self.base_syms.insert(id, s);
        Some(s)
    }

    /// The linear term a value denotes, if expressible.
    fn term_of(&self, v: &AbsValue) -> Option<Term> {
        match v {
            AbsValue::Spec(inner) => self.term_of(inner),
            AbsValue::Int { val: Some(c), .. } => Some(Term::constant(*c)),
            AbsValue::Int {
                val: None,
                sym: Some((s, k)),
                ..
            } => Some(Term::var(*s, *k)),
            AbsValue::Bool { val: Some(b), .. } => Some(Term::constant(i128::from(*b))),
            _ => None,
        }
    }

    /// The atom an undecided branch condition pins down, if any.
    fn cond_atom(&self, v: &AbsValue) -> Option<Atom> {
        match v {
            AbsValue::Spec(inner) => self.cond_atom(inner),
            AbsValue::Bool { atom: Some(a), .. } => Some((**a).clone()),
            AbsValue::Int {
                val: None,
                sym: Some((s, k)),
                ..
            } => {
                if *k == 0 {
                    if let Some(a) = self.linked_syms.get(&s.0) {
                        return Some(a.clone());
                    }
                }
                // Truthiness of a symbolic integer.
                Some(Atom::Cmp {
                    lhs: Term::var(*s, *k),
                    rel: Rel::Ne,
                    rhs: Term::constant(0),
                })
            }
            _ => None,
        }
    }

    /// One abstract step; returns true when the budget is exhausted and the
    /// caller should give up with `Top`.
    fn tick(&mut self) -> bool {
        self.steps += 1;
        if self.steps > self.config.step_budget {
            self.budget_exhausted = true;
        }
        self.budget_exhausted
    }

    fn size_of_ty(&self, ty: &Ctype) -> Option<u64> {
        layout::size_of(ty, self.ienv, &self.program.tags).ok()
    }

    // ----- program setup ---------------------------------------------------------

    fn alloc(
        &mut self,
        kind: StorageKind,
        ty: Option<Ctype>,
        size: Option<u64>,
        init: InitState,
        name: &str,
    ) -> AllocId {
        self.state.allocs.push(AllocInfo {
            kind,
            ty,
            size,
            life: Lifetime::Live,
            init,
            content: AbsValue::Top,
            last_store: None,
            name: name.to_owned(),
        });
        self.state.allocs.len() - 1
    }

    fn setup_globals(&mut self) {
        for (name, bytes) in &self.program.string_literals {
            let ty = Ctype::Array(
                Box::new(Ctype::integer(IntegerType::Char)),
                Some(bytes.len() as u64),
            );
            let id = self.state.allocs.len();
            self.state.allocs.push(AllocInfo {
                kind: StorageKind::StringLit,
                ty: Some(ty),
                size: Some(bytes.len() as u64),
                life: Lifetime::Live,
                init: InitState::Init,
                content: AbsValue::Top,
                last_store: None,
                name: name.as_str().to_owned(),
            });
            self.globals.insert(
                name.as_str().to_owned(),
                AbsValue::Ptr(AbsPtr::to_target(id)),
            );
        }
        for g in &self.program.globals {
            let size = layout::size_of(&g.ty, self.ienv, &self.program.tags).ok();
            let id = self.state.allocs.len();
            self.state.allocs.push(AllocInfo {
                kind: StorageKind::Static,
                ty: Some(g.ty.clone()),
                size,
                life: Lifetime::Live,
                init: InitState::Uninit,
                content: AbsValue::Top,
                last_store: None,
                name: g.name.as_str().to_owned(),
            });
            self.globals.insert(
                g.name.as_str().to_owned(),
                AbsValue::Ptr(AbsPtr::to_target(id)),
            );
        }
        self.cur_proc = "<static init>".to_owned();
        self.ret_stack.push(None);
        let inits: Vec<Expr> = self
            .program
            .globals
            .iter()
            .map(|g| g.init.clone())
            .collect();
        for init in &inits {
            let mut env = Env::new();
            let _ = self.eval_expr(&mut env, init);
        }
        self.ret_stack.pop();
        // Objects with static storage duration are zero-initialised (6.7.9p10)
        // even without an explicit initialiser.
        for a in &mut self.state.allocs {
            if a.kind == StorageKind::Static && a.init == InitState::Uninit {
                a.init = InitState::Init;
            }
        }
    }

    fn analyze_proc(&mut self, name: &str) {
        let Some(proc) = self.program.proc(name) else {
            return;
        };
        let params = proc.params.clone();
        let body = proc.body.clone();
        self.cur_proc = name.to_owned();
        let mut env = Env::new();
        let mut param_ids = Vec::new();
        for (sym, ty) in &params {
            let size = self.size_of_ty(ty);
            // Parameters hold the (unknown) incoming argument, so they are
            // initialised from the start.
            let id = self.alloc(
                StorageKind::Stack,
                Some(ty.clone()),
                size,
                InitState::Init,
                sym.as_str(),
            );
            env.insert(
                sym.as_str().to_owned(),
                AbsValue::Ptr(AbsPtr::to_target(id)),
            );
            param_ids.push(id);
        }
        self.ret_stack.push(None);
        let _ = self.eval_expr(&mut env, &body);
        self.ret_stack.pop();
        for id in param_ids {
            self.state.allocs[id].life = Lifetime::Dead;
        }
    }

    // ----- calls -----------------------------------------------------------------

    fn call_proc(&mut self, name: &str, args: Vec<AbsValue>) -> AbsValue {
        if let Some(flow) = self.call_builtin(name, &args) {
            return match flow {
                AFlow::Val(v) => v,
                _ => AbsValue::Top,
            };
        }
        let Some(proc) = self.program.proc(name) else {
            return AbsValue::Top;
        };
        if self.call_stack.len() >= self.config.call_depth
            || self.call_stack.iter().any(|c| c == name)
            || self.budget_exhausted
        {
            // Widened call: the callee may write anything it can reach.
            self.havoc_memory();
            return AbsValue::Top;
        }
        let params = proc.params.clone();
        let body = proc.body.clone();
        let saved_proc = self.cur_proc.clone();
        let saved_jumps = std::mem::take(&mut self.jump_states);
        self.call_stack.push(name.to_owned());
        self.cur_proc = name.to_owned();
        let mut env = Env::new();
        let mut param_ids = Vec::new();
        for ((sym, ty), arg) in params.iter().zip(args) {
            let size = self.size_of_ty(ty);
            let id = self.alloc(
                StorageKind::Stack,
                Some(ty.clone()),
                size,
                InitState::Init,
                sym.as_str(),
            );
            self.state.allocs[id].content = arg;
            self.state.allocs[id].last_store = Some(ty.clone());
            env.insert(
                sym.as_str().to_owned(),
                AbsValue::Ptr(AbsPtr::to_target(id)),
            );
            param_ids.push(id);
        }
        self.ret_stack.push(None);
        let flow = self.eval_expr(&mut env, &body);
        let returned = self.ret_stack.pop().flatten();
        for id in param_ids {
            self.state.allocs[id].life = Lifetime::Dead;
        }
        self.call_stack.pop();
        self.cur_proc = saved_proc;
        self.jump_states = saved_jumps;
        let fallthrough = match flow {
            AFlow::Val(v) => Some(v),
            _ => None,
        };
        match (returned, fallthrough) {
            (Some(r), Some(v)) => r.join(&v),
            (Some(r), None) => r,
            (None, Some(v)) => v,
            (None, None) => AbsValue::Top,
        }
    }

    /// The callee escaped analysis: anything reachable may have been written.
    fn havoc_memory(&mut self) {
        for a in &mut self.state.allocs {
            if a.life != Lifetime::Dead {
                a.content = AbsValue::Top;
                a.init = a.init.touched();
                a.last_store = None;
            }
        }
    }

    // ----- value coercions -------------------------------------------------------

    fn as_ptr(&self, v: &AbsValue) -> AbsPtr {
        match v {
            AbsValue::Ptr(p) => p.clone(),
            AbsValue::Spec(inner) => self.as_ptr(inner),
            AbsValue::Int { val, prov, .. } => {
                if let Some(p) = prov {
                    if *val == Some(0) {
                        AbsPtr::null_ptr()
                    } else {
                        // Arithmetic on the integer form is not tracked, so
                        // the byte offset into the carried allocation is
                        // unknown after the round trip.
                        AbsPtr {
                            from_int: true,
                            offset: None,
                            ..p.clone()
                        }
                    }
                } else {
                    match val {
                        Some(0) => AbsPtr::null_ptr(),
                        Some(_) => AbsPtr {
                            any: true,
                            from_int: true,
                            ..AbsPtr::default()
                        },
                        None => AbsPtr {
                            any: true,
                            from_int: true,
                            null: true,
                            ..AbsPtr::default()
                        },
                    }
                }
            }
            _ => AbsPtr::wild(),
        }
    }

    fn as_int(&self, v: &AbsValue) -> Option<i128> {
        match v {
            AbsValue::Int { val, .. } => *val,
            AbsValue::Spec(inner) => self.as_int(inner),
            AbsValue::Bool { val: Some(b), .. } => Some(i128::from(*b)),
            _ => None,
        }
    }

    fn as_bool(&self, v: &AbsValue) -> Option<bool> {
        match v {
            AbsValue::Bool { val, .. } => *val,
            AbsValue::Int { val, .. } => val.map(|i| i != 0),
            AbsValue::Spec(inner) => self.as_bool(inner),
            _ => None,
        }
    }

    fn as_ctype(&self, v: &AbsValue) -> Option<Ctype> {
        match v {
            AbsValue::Ctype(t) => Some(t.clone()),
            AbsValue::Spec(inner) => self.as_ctype(inner),
            _ => None,
        }
    }

    // ----- pure expressions ------------------------------------------------------

    fn eval_pexpr(&mut self, env: &mut Env, pe: &PExpr) -> AbsValue {
        if self.tick() {
            return AbsValue::Top;
        }
        match pe {
            PExpr::Sym(name) => env
                .get(name.as_str())
                .or_else(|| self.globals.get(name.as_str()))
                .cloned()
                .unwrap_or(AbsValue::Top),
            PExpr::Unit => AbsValue::Unit,
            PExpr::Boolean(b) => AbsValue::bool_known(Some(*b)),
            PExpr::Integer(i) => AbsValue::int(*i),
            PExpr::CtypeConst(ty) => AbsValue::Ctype(ty.clone()),
            PExpr::NullPtr(_) => AbsValue::Ptr(AbsPtr::null_ptr()),
            PExpr::FunctionPtr(f) => AbsValue::Ptr(AbsPtr::function(f)),
            PExpr::Undef(kind) => {
                self.finding(*kind, true, "reachable undefined-behaviour node in Core");
                AbsValue::Top
            }
            PExpr::Error(_) => AbsValue::Top,
            PExpr::Specified(inner) => {
                let v = self.eval_pexpr(env, inner);
                AbsValue::spec(v)
            }
            PExpr::Unspecified(ty) => AbsValue::Unspec(Some(ty.clone())),
            PExpr::Tuple(items) => {
                let vs = items.iter().map(|i| self.eval_pexpr(env, i)).collect();
                AbsValue::Tuple(vs)
            }
            PExpr::ArrayVal(items) => {
                for i in items {
                    self.eval_pexpr(env, i);
                }
                AbsValue::Top
            }
            PExpr::StructVal(_, members) => {
                for (_, v) in members {
                    self.eval_pexpr(env, v);
                }
                AbsValue::Top
            }
            PExpr::UnionVal(_, _, v) => {
                self.eval_pexpr(env, v);
                AbsValue::Top
            }
            PExpr::Not(inner) => {
                let v = self.eval_pexpr(env, inner);
                match self.as_bool(&v) {
                    Some(b) => AbsValue::bool_known(Some(!b)),
                    None => AbsValue::bool_atom(self.cond_atom(&v).map(|a| a.negate())),
                }
            }
            PExpr::Binop(op, a, b) => {
                let va = self.eval_pexpr(env, a);
                let vb = self.eval_pexpr(env, b);
                self.eval_binop(*op, &va, &vb)
            }
            PExpr::If(c, t, f) => {
                let cond = self.eval_pexpr(env, c);
                match self.as_bool(&cond) {
                    Some(true) => self.eval_pexpr(env, t),
                    Some(false) => self.eval_pexpr(env, f),
                    None if self.path_mode() => {
                        let atom = self.cond_atom(&cond);
                        let arms: [(Option<Atom>, &PExpr); 2] =
                            [(atom.clone(), t), (atom.as_ref().map(Atom::negate), f)];
                        self.eval_pure_fork(env, &arms)
                    }
                    None => {
                        // Pure expressions have no memory effects, so only the
                        // path-definiteness flag needs saving.
                        let saved = self.definite;
                        self.definite = false;
                        let vt = self.eval_pexpr(env, t);
                        let vf = self.eval_pexpr(env, f);
                        self.definite = saved;
                        vt.join(&vf)
                    }
                }
            }
            PExpr::Case(scrutinee, arms) => {
                let v = self.eval_pexpr(env, scrutinee);
                let candidates = self.select_arms(&v, arms.iter().map(|(p, _)| p));
                match candidates.as_slice() {
                    [(idx, bindings, true)] => {
                        let mut env2 = env.clone();
                        for (n, bv) in bindings {
                            env2.insert(n.clone(), bv.clone());
                        }
                        self.eval_pexpr(&mut env2, &arms[*idx].1)
                    }
                    [] => AbsValue::Top,
                    many if self.path_mode() => {
                        // Opaque fork (no per-arm constraint): the frame
                        // machinery still merges definiteness across arms.
                        let many = many.to_vec();
                        let mut joined: Option<AbsValue> = None;
                        let mut frames = Vec::new();
                        for (idx, bindings, _) in many {
                            self.finding_frames.push(Frame::new());
                            self.paths_explored += 1;
                            let mut env2 = env.clone();
                            for (n, bv) in bindings {
                                env2.insert(n, bv);
                            }
                            let v = self.eval_pexpr(&mut env2, &arms[idx].1);
                            frames.push(self.finding_frames.pop().expect("fork frame"));
                            joined = Some(match joined {
                                Some(j) => j.join(&v),
                                None => v,
                            });
                        }
                        self.merge_sibling_findings(frames);
                        joined.unwrap_or(AbsValue::Top)
                    }
                    many => {
                        let saved = self.definite;
                        self.definite = false;
                        let mut joined: Option<AbsValue> = None;
                        let many = many.to_vec();
                        for (idx, bindings, _) in many {
                            let mut env2 = env.clone();
                            for (n, bv) in bindings {
                                env2.insert(n, bv);
                            }
                            let v = self.eval_pexpr(&mut env2, &arms[idx].1);
                            joined = Some(match joined {
                                Some(j) => j.join(&v),
                                None => v,
                            });
                        }
                        self.definite = saved;
                        joined.unwrap_or(AbsValue::Top)
                    }
                }
            }
            PExpr::Let(pat, value, body) => {
                let v = self.eval_pexpr(env, value);
                let mut env2 = env.clone();
                Self::bind(&mut env2, pat, v);
                self.eval_pexpr(&mut env2, body)
            }
            PExpr::Builtin(f, args) => {
                let vs: Vec<AbsValue> = args.iter().map(|a| self.eval_pexpr(env, a)).collect();
                self.eval_builtin(*f, &vs)
            }
            PExpr::ArrayShift {
                ptr,
                elem_ty,
                index,
            } => {
                let pv = self.eval_pexpr(env, ptr);
                let iv = self.eval_pexpr(env, index);
                self.array_shift(&pv, elem_ty, self.as_int(&iv))
            }
            PExpr::MemberShift { ptr, tag, member } => {
                let pv = self.eval_pexpr(env, ptr);
                let p = self.as_ptr(&pv);
                let delta = layout::offset_of(*tag, member.as_str(), self.ienv, &self.program.tags)
                    .ok()
                    .map(i128::from);
                if let Some(id) = p.single() {
                    // Shifting into a struct the object does not have is the
                    // common-prefix / wrong-tag access idiom the strict models
                    // reject under effective-type rules.
                    match &self.state.allocs[id].ty {
                        Some(Ctype::Struct(t2)) | Some(Ctype::Union(t2)) if t2 != tag => {
                            let name = self.state.allocs[id].name.clone();
                            self.finding(
                                UbKind::EffectiveTypeViolation,
                                false,
                                format!(
                                    "member access at a struct/union type `{name}` does not have"
                                ),
                            );
                        }
                        _ => {}
                    }
                }
                let offset = match (p.offset, delta) {
                    (Some(o), Some(d)) => Some(o + d),
                    _ => None,
                };
                AbsValue::Ptr(p.with_offset(offset))
            }
        }
    }

    /// Path-mode fork over pure arms: each feasible arm is evaluated under
    /// its constraint with a fresh finding frame; infeasible arms are pruned.
    /// Pure expressions have no memory effects, so no state fork is needed.
    fn eval_pure_fork(&mut self, env: &mut Env, arms: &[(Option<Atom>, &PExpr)]) -> AbsValue {
        let mut joined: Option<AbsValue> = None;
        let mut frames = Vec::new();
        for (atom, arm) in arms {
            let depth = self.path.len();
            if let Some(a) = atom {
                self.path.push(a.clone());
                if !self.path_feasible() {
                    self.path.truncate(depth);
                    self.paths_pruned += 1;
                    continue;
                }
            }
            self.paths_explored += 1;
            self.finding_frames.push(Frame::new());
            let v = self.eval_pexpr(env, arm);
            frames.push(self.finding_frames.pop().expect("fork frame"));
            self.path.truncate(depth);
            joined = Some(match joined {
                Some(j) => j.join(&v),
                None => v,
            });
        }
        self.merge_sibling_findings(frames);
        joined.unwrap_or(AbsValue::Top)
    }

    fn array_shift(&mut self, pv: &AbsValue, elem_ty: &Ctype, index: Option<i128>) -> AbsValue {
        let p = self.as_ptr(pv);
        let elem_size = self.size_of_ty(elem_ty).map(i128::from);
        let new_offset = match (p.offset, index, elem_size) {
            (Some(o), Some(i), Some(s)) => Some(o + i * s),
            _ => None,
        };
        if let Some(id) = p.single() {
            let (size, name) = {
                let a = &self.state.allocs[id];
                (a.size, a.name.clone())
            };
            match (new_offset, size) {
                (Some(off), Some(size)) => {
                    // One-past (off == size) is allowed by 6.5.6p8.
                    if off < 0 || off > i128::from(size) {
                        self.finding(
                            UbKind::OutOfBoundsPointerArithmetic,
                            true,
                            format!("shift to byte {off} of `{name}` ({size} bytes)"),
                        );
                    }
                }
                _ => {
                    self.finding(
                        UbKind::OutOfBoundsPointerArithmetic,
                        false,
                        format!("pointer arithmetic on `{name}` the analyzer cannot bound"),
                    );
                }
            }
        } else if p.any || p.targets.len() > 1 {
            self.finding(
                UbKind::OutOfBoundsPointerArithmetic,
                false,
                "pointer arithmetic on a pointer with imprecise provenance",
            );
        }
        AbsValue::Ptr(p.with_offset(new_offset))
    }

    fn eval_binop(&mut self, op: Binop, a: &AbsValue, b: &AbsValue) -> AbsValue {
        use Binop::*;
        let prov_of = |v: &AbsValue| match v {
            AbsValue::Int { prov, .. } => prov.clone(),
            _ => None,
        };
        match op {
            Eq | Ne | Lt | Le | Gt | Ge => {
                let (ia, ib) = (self.as_int(a), self.as_int(b));
                let val = match (ia, ib) {
                    (Some(x), Some(y)) => Some(match op {
                        Eq => x == y,
                        Ne => x != y,
                        Lt => x < y,
                        Le => x <= y,
                        Gt => x > y,
                        _ => x >= y,
                    }),
                    _ => None,
                };
                if val.is_some() {
                    return AbsValue::bool_known(val);
                }
                let rel = match op {
                    Eq => Rel::Eq,
                    Ne => Rel::Ne,
                    Lt => Rel::Lt,
                    Le => Rel::Le,
                    Gt => Rel::Gt,
                    _ => Rel::Ge,
                };
                let atom = match (self.term_of(a), self.term_of(b)) {
                    (Some(lhs), Some(rhs)) => Some(self.comparison_atom(lhs, rel, rhs)),
                    _ => None,
                };
                AbsValue::bool_atom(atom)
            }
            And | Or => {
                let (ba, bb) = (self.as_bool(a), self.as_bool(b));
                let val = match (op, ba, bb) {
                    (And, Some(false), _) | (And, _, Some(false)) => Some(false),
                    (And, Some(true), Some(true)) => Some(true),
                    (Or, Some(true), _) | (Or, _, Some(true)) => Some(true),
                    (Or, Some(false), Some(false)) => Some(false),
                    _ => None,
                };
                // An undecided conjunct/disjunct with a decided partner keeps
                // the undecided side's atom (`true && c` ≡ `c`).
                let atom = if val.is_none() {
                    match (op, ba, bb) {
                        (And, Some(true), None) | (Or, Some(false), None) => self.cond_atom(b),
                        (And, None, Some(true)) | (Or, None, Some(false)) => self.cond_atom(a),
                        _ => None,
                    }
                } else {
                    None
                };
                AbsValue::Bool {
                    val,
                    atom: atom.map(Box::new),
                }
            }
            Add | Sub | Mul | Div | RemT | Exp | BitAnd | BitOr | BitXor => {
                let (ia, ib) = (self.as_int(a), self.as_int(b));
                let val = match (ia, ib) {
                    (Some(x), Some(y)) => match op {
                        Add => x.checked_add(y),
                        Sub => x.checked_sub(y),
                        Mul => x.checked_mul(y),
                        Div => x.checked_div(y),
                        RemT => x.checked_rem(y),
                        Exp => u32::try_from(y).ok().and_then(|e| x.checked_pow(e)),
                        BitAnd => Some(x & y),
                        BitOr => Some(x | y),
                        _ => Some(x ^ y),
                    },
                    _ => None,
                };
                // Linear symbolic form survives add/sub with a constant, and
                // subtracting two offsets of the same variable is constant.
                let sym = if val.is_some() {
                    None
                } else {
                    match (op, self.term_of(a), self.term_of(b)) {
                        (Add, Some(x), Some(y)) => match (x.var, y.var) {
                            (Some(s), None) => Some((s, x.k + y.k)),
                            (None, Some(s)) => Some((s, x.k + y.k)),
                            _ => None,
                        },
                        (Sub, Some(x), Some(y)) => match (x.var, y.var) {
                            (Some(s), None) => Some((s, x.k - y.k)),
                            _ => None,
                        },
                        _ => None,
                    }
                };
                let val = match (op, val, self.term_of(a), self.term_of(b)) {
                    // x - x + (k1 - k2): same variable cancels.
                    (Sub, None, Some(x), Some(y)) if x.var.is_some() && x.var == y.var => {
                        Some(x.k - y.k)
                    }
                    (_, v, _, _) => v,
                };
                // Provenance survives add/sub with a pure integer (the
                // de-facto int-to-pointer round trips); other operators (the
                // XOR-linked-list trick) lose it.
                let prov = match (op, prov_of(a), prov_of(b)) {
                    (Add | Sub, Some(p), None) | (Add, None, Some(p)) => Some(p),
                    _ => None,
                };
                AbsValue::Int { val, sym, prov }
            }
        }
    }

    /// Build a comparison atom; a test of a linked boolean symbol against
    /// 0/1 resolves to the pointer atom it stands for.
    fn comparison_atom(&self, lhs: Term, rel: Rel, rhs: Term) -> Atom {
        let linked = |t: &Term, other: &Term| -> Option<(Atom, bool)> {
            let s = t.var?;
            if t.k != 0 || other.var.is_some() {
                return None;
            }
            let a = self.linked_syms.get(&s.0)?;
            // s is 0/1-valued: s == 1 and s != 0 assert the atom, s == 0 and
            // s != 1 refute it.
            match (rel, other.k) {
                (Rel::Eq, 1) | (Rel::Ne, 0) => Some((a.clone(), true)),
                (Rel::Eq, 0) | (Rel::Ne, 1) => Some((a.clone(), false)),
                _ => None,
            }
        };
        if let Some((a, positive)) = linked(&lhs, &rhs).or_else(|| linked(&rhs, &lhs)) {
            return if positive { a } else { a.negate() };
        }
        Atom::Cmp { lhs, rel, rhs }
    }

    fn eval_builtin(&mut self, f: BuiltinFn, args: &[AbsValue]) -> AbsValue {
        let ctype = args.first().and_then(|v| self.as_ctype(v));
        let int_ty = ctype.as_ref().and_then(|t| match t {
            Ctype::Integer(it) => Some(*it),
            _ => None,
        });
        match f {
            BuiltinFn::IntegerPromotion => args.get(1).cloned().unwrap_or(AbsValue::Top),
            BuiltinFn::ConvInt => {
                let v = args.get(1).cloned().unwrap_or(AbsValue::Top);
                let prov = match &v {
                    AbsValue::Int { prov, .. } => prov.clone(),
                    _ => None,
                };
                let val = match (self.as_int(&v), int_ty) {
                    (Some(x), Some(it)) => Some(self.ienv.convert_int(x, it)),
                    _ => None,
                };
                // The symbolic handle survives the conversion. This assumes
                // the unknown value is representable in the target type (no
                // wrap-around); the elaboration guards lossy conversions
                // with IsRepresentable checks, which fork separately, so in
                // practice constraints only relate in-range values.
                let sym = if val.is_some() {
                    None
                } else {
                    match &v {
                        AbsValue::Int { sym, .. } => *sym,
                        _ => None,
                    }
                };
                AbsValue::Int { val, sym, prov }
            }
            BuiltinFn::IsRepresentable => {
                let v = args.get(1).map(|v| self.as_int(v)).unwrap_or(None);
                let val = match (v, int_ty) {
                    (Some(x), Some(it)) => Some(self.ienv.representable(x, it)),
                    _ => None,
                };
                if val.is_none() {
                    // The guard around a lossy conversion: branching on it
                    // constrains the symbolic value to (or out of) the
                    // target type's range — the signed-overflow witness.
                    let term = args.get(1).and_then(|v| self.term_of(v));
                    if let (Some(term), Some(it)) = (term, int_ty) {
                        return AbsValue::bool_atom(Some(Atom::InRange {
                            term,
                            lo: self.ienv.int_min(it),
                            hi: self.ienv.int_max(it),
                            positive: true,
                        }));
                    }
                }
                AbsValue::bool_known(val)
            }
            BuiltinFn::CtypeWidth => match int_ty {
                Some(it) => AbsValue::int(i128::from(self.ienv.integer_width(it))),
                None => AbsValue::unknown_int(),
            },
            BuiltinFn::Ivmax => match int_ty {
                Some(it) => AbsValue::int(self.ienv.int_max(it)),
                None => AbsValue::unknown_int(),
            },
            BuiltinFn::Ivmin => match int_ty {
                Some(it) => AbsValue::int(self.ienv.int_min(it)),
                None => AbsValue::unknown_int(),
            },
            BuiltinFn::SizeOf => match ctype.as_ref().and_then(|t| self.size_of_ty(t)) {
                Some(s) => AbsValue::int(i128::from(s)),
                None => AbsValue::unknown_int(),
            },
            BuiltinFn::AlignOf => match ctype
                .as_ref()
                .and_then(|t| layout::align_of(t, self.ienv, &self.program.tags).ok())
            {
                Some(a) => AbsValue::int(i128::from(a)),
                None => AbsValue::unknown_int(),
            },
            BuiltinFn::IsSigned => AbsValue::bool_known(int_ty.map(|it| self.ienv.is_signed(it))),
            BuiltinFn::IsUnsigned => {
                AbsValue::bool_known(int_ty.map(|it| !self.ienv.is_signed(it)))
            }
            BuiltinFn::IsInteger => AbsValue::bool_known(ctype.as_ref().map(Ctype::is_integer)),
            BuiltinFn::IsScalar => AbsValue::bool_known(ctype.as_ref().map(Ctype::is_scalar)),
        }
    }

    // ----- pattern matching ------------------------------------------------------

    fn bind(env: &mut Env, pat: &Pattern, v: AbsValue) {
        match pat {
            Pattern::Wildcard => {}
            Pattern::Sym(name) => {
                env.insert(name.as_str().to_owned(), v);
            }
            Pattern::Tuple(ps) => match v {
                AbsValue::Tuple(vs) if vs.len() == ps.len() => {
                    for (p, item) in ps.iter().zip(vs) {
                        Self::bind(env, p, item);
                    }
                }
                other if ps.len() == 1 => Self::bind(env, &ps[0], other),
                _ => {
                    for p in ps {
                        Self::bind(env, p, AbsValue::Top);
                    }
                }
            },
            Pattern::Specified(p) => match v {
                AbsValue::Spec(inner) => Self::bind(env, p, *inner),
                other => Self::bind(env, p, other),
            },
            Pattern::Unspecified(p) => match v {
                AbsValue::Unspec(Some(ty)) => Self::bind(env, p, AbsValue::Ctype(ty)),
                _ => Self::bind(env, p, AbsValue::Top),
            },
        }
    }

    fn match_quality(pat: &Pattern, v: &AbsValue) -> MatchQ {
        match (pat, v) {
            (Pattern::Wildcard, _) => MatchQ::Yes(Vec::new()),
            (Pattern::Sym(name), _) => MatchQ::Yes(vec![(name.as_str().to_owned(), v.clone())]),
            (Pattern::Tuple(ps), AbsValue::Tuple(vs)) if ps.len() == vs.len() => {
                let mut bindings = Vec::new();
                let mut certain = true;
                for (p, item) in ps.iter().zip(vs) {
                    match Self::match_quality(p, item) {
                        MatchQ::Yes(mut bs) => bindings.append(&mut bs),
                        MatchQ::Maybe(mut bs) => {
                            certain = false;
                            bindings.append(&mut bs);
                        }
                        MatchQ::No => return MatchQ::No,
                    }
                }
                if certain {
                    MatchQ::Yes(bindings)
                } else {
                    MatchQ::Maybe(bindings)
                }
            }
            (Pattern::Tuple(ps), other) if ps.len() == 1 => Self::match_quality(&ps[0], other),
            (Pattern::Tuple(ps), _) => MatchQ::Maybe(Self::bind_all_top(ps)),
            (Pattern::Specified(p), AbsValue::Spec(inner)) => Self::match_quality(p, inner),
            (Pattern::Specified(_), AbsValue::Unspec(_)) => MatchQ::No,
            (Pattern::Specified(p), _) => match Self::match_quality(p, &AbsValue::Top) {
                MatchQ::Yes(bs) | MatchQ::Maybe(bs) => MatchQ::Maybe(bs),
                MatchQ::No => MatchQ::No,
            },
            (Pattern::Unspecified(p), AbsValue::Unspec(Some(ty))) => {
                Self::match_quality(p, &AbsValue::Ctype(ty.clone()))
            }
            (Pattern::Unspecified(p), AbsValue::Unspec(None)) => {
                match Self::match_quality(p, &AbsValue::Top) {
                    MatchQ::Yes(bs) | MatchQ::Maybe(bs) => MatchQ::Yes(bs),
                    MatchQ::No => MatchQ::No,
                }
            }
            (Pattern::Unspecified(_), AbsValue::Spec(_)) => MatchQ::No,
            (Pattern::Unspecified(p), _) => match Self::match_quality(p, &AbsValue::Top) {
                MatchQ::Yes(bs) | MatchQ::Maybe(bs) => MatchQ::Maybe(bs),
                MatchQ::No => MatchQ::No,
            },
        }
    }

    fn bind_all_top(ps: &[Pattern]) -> Vec<(String, AbsValue)> {
        let mut out = Vec::new();
        for p in ps {
            match p {
                Pattern::Sym(name) => out.push((name.as_str().to_owned(), AbsValue::Top)),
                Pattern::Tuple(inner) => out.append(&mut Self::bind_all_top(inner)),
                Pattern::Specified(inner) | Pattern::Unspecified(inner) => {
                    out.append(&mut Self::bind_all_top(std::slice::from_ref(inner)))
                }
                Pattern::Wildcard => {}
            }
        }
        out
    }

    /// Which arms can match `v`: all `Maybe`s up to and including the first
    /// definite `Yes`. The bool marks a definite match.
    fn select_arms<'p>(
        &self,
        v: &AbsValue,
        pats: impl Iterator<Item = &'p Pattern>,
    ) -> Vec<SelectedArm> {
        let mut out = Vec::new();
        for (idx, pat) in pats.enumerate() {
            match Self::match_quality(pat, v) {
                MatchQ::Yes(bs) => {
                    out.push((idx, bs, true));
                    break;
                }
                MatchQ::Maybe(bs) => out.push((idx, bs, false)),
                MatchQ::No => {}
            }
        }
        out
    }

    // ----- effectful expressions -------------------------------------------------

    fn eval_expr(&mut self, env: &mut Env, e: &Expr) -> AFlow {
        if self.tick() {
            return AFlow::Val(AbsValue::Top);
        }
        match e {
            Expr::Pure(pe) => AFlow::Val(self.eval_pexpr(env, pe)),
            Expr::Memop(op, args) => self.eval_memop(env, *op, args),
            Expr::Action(pol, action) => self.eval_action(env, action, *pol == Polarity::Negative),
            Expr::Skip => AFlow::Val(AbsValue::Unit),
            Expr::Let(pat, value, body) => {
                let v = self.eval_pexpr(env, value);
                Self::bind(env, pat, v);
                self.eval_expr(env, body)
            }
            Expr::If(c, t, f) => {
                let cond = self.eval_pexpr(env, c);
                match self.as_bool(&cond) {
                    Some(true) => self.eval_expr(env, t),
                    Some(false) => self.eval_expr(env, f),
                    None => {
                        let atom = if self.path_mode() {
                            self.cond_atom(&cond)
                        } else {
                            None
                        };
                        let branches: Vec<(Option<Atom>, &Expr)> =
                            vec![(atom.clone(), t), (atom.as_ref().map(Atom::negate), f)];
                        self.eval_forked(env, branches)
                    }
                }
            }
            Expr::Case(scrutinee, arms) => {
                let v = self.eval_pexpr(env, scrutinee);
                let candidates = self.select_arms(&v, arms.iter().map(|(p, _)| p));
                match candidates.as_slice() {
                    [(idx, bindings, true)] => {
                        let mut env2 = env.clone();
                        for (n, bv) in bindings {
                            env2.insert(n.clone(), bv.clone());
                        }
                        self.eval_expr(&mut env2, &arms[*idx].1)
                    }
                    [] => AFlow::Val(AbsValue::Top),
                    many if self.path_mode() => {
                        // Opaque fork: no per-arm constraint, but definite
                        // findings shared by every arm stay definite.
                        let many = many.to_vec();
                        let saved_state = self.state.clone();
                        let mut results = Vec::new();
                        let mut frames = Vec::new();
                        for (idx, bindings, _) in many {
                            self.finding_frames.push(Frame::new());
                            self.paths_explored += 1;
                            self.state = saved_state.clone();
                            let mut env2 = env.clone();
                            for (n, bv) in bindings {
                                env2.insert(n, bv);
                            }
                            let flow = self.eval_expr(&mut env2, &arms[idx].1);
                            frames.push(self.finding_frames.pop().expect("fork frame"));
                            results.push((flow, self.state.clone()));
                        }
                        self.merge_sibling_findings(frames);
                        self.join_results(results)
                    }
                    many => {
                        let many = many.to_vec();
                        let saved_def = self.definite;
                        self.definite = false;
                        let saved_state = self.state.clone();
                        let mut results = Vec::new();
                        for (idx, bindings, _) in many {
                            self.state = saved_state.clone();
                            let mut env2 = env.clone();
                            for (n, bv) in bindings {
                                env2.insert(n, bv);
                            }
                            let flow = self.eval_expr(&mut env2, &arms[idx].1);
                            results.push((flow, self.state.clone()));
                        }
                        self.definite = saved_def;
                        self.join_results(results)
                    }
                }
            }
            Expr::Ccall(f, args) => {
                let fv = self.eval_pexpr(env, f);
                let vs: Vec<AbsValue> = args.iter().map(|a| self.eval_pexpr(env, a)).collect();
                // The elaborator wraps function designators as
                // `Specified(cfunction(f))`; `as_ptr` sees through the
                // wrapper and the env binding.
                let name = self.as_ptr(&fv).func;
                match name {
                    Some(name) => AFlow::Val(self.call_proc(&name, vs)),
                    None => {
                        self.havoc_memory();
                        AFlow::Val(AbsValue::Top)
                    }
                }
            }
            Expr::Unseq(items) => {
                let mut frames = Vec::new();
                let mut values = Vec::new();
                for item in items {
                    self.fp_stack.push(Vec::new());
                    let flow = self.eval_expr(env, item);
                    let frame = self.fp_stack.pop().unwrap_or_default();
                    frames.push(frame);
                    match flow {
                        AFlow::Val(v) => values.push(v),
                        other => {
                            self.merge_frames(frames);
                            return other;
                        }
                    }
                }
                for i in 0..frames.len() {
                    for j in (i + 1)..frames.len() {
                        self.check_race(&frames[i], &frames[j], false);
                    }
                }
                self.merge_frames(frames);
                AFlow::Val(AbsValue::Tuple(values))
            }
            Expr::Wseq(pat, a, b) => {
                self.fp_stack.push(Vec::new());
                let fa = self.eval_expr(env, a);
                let fp_a = self.fp_stack.pop().unwrap_or_default();
                match fa {
                    AFlow::Val(v) => {
                        Self::bind(env, pat, v);
                        self.fp_stack.push(Vec::new());
                        let fb = self.eval_expr(env, b);
                        let fp_b = self.fp_stack.pop().unwrap_or_default();
                        // Weak sequencing leaves only the negative actions of
                        // the first operand unsequenced w.r.t. the second.
                        self.check_race(&fp_a, &fp_b, true);
                        self.merge_frames(vec![fp_a, fp_b]);
                        fb
                    }
                    AFlow::Jump(l) => {
                        self.merge_frames(vec![fp_a]);
                        if Self::contains_save(b, &l) {
                            self.eval_seeking(env, b, &l)
                        } else {
                            AFlow::Jump(l)
                        }
                    }
                    other => {
                        self.merge_frames(vec![fp_a]);
                        other
                    }
                }
            }
            Expr::Sseq(pat, a, b) => match self.eval_expr(env, a) {
                AFlow::Val(v) => {
                    Self::bind(env, pat, v);
                    self.eval_expr(env, b)
                }
                AFlow::Jump(l) => {
                    if Self::contains_save(b, &l) {
                        self.eval_seeking(env, b, &l)
                    } else {
                        AFlow::Jump(l)
                    }
                }
                other => other,
            },
            Expr::Indet(body) => {
                // Accesses inside an indeterminately-sequenced region are not
                // candidates for the enclosing race checks.
                let saved = std::mem::take(&mut self.fp_stack);
                let flow = self.eval_expr(env, body);
                self.fp_stack = saved;
                flow
            }
            Expr::Bound(body) => self.eval_expr(env, body),
            Expr::Nd(items) => {
                let bodies: Vec<&Expr> = items.iter().collect();
                self.eval_branches(env, &bodies)
            }
            Expr::Par(items) => {
                for item in items {
                    let mut env2 = env.clone();
                    let _ = self.eval_expr(&mut env2, item);
                }
                AFlow::Val(AbsValue::Top)
            }
            Expr::Save(label, body) => self.eval_save(env, label, body),
            Expr::Exit(label, body) => {
                let flow = self.eval_expr(env, body);
                let pending = self.jump_states.remove(label.as_str());
                match pending {
                    Some(js) => {
                        // Some path broke out to this delimiter; its state
                        // joins whatever the body ended with.
                        self.state.join_from(&js);
                        self.definite = false;
                        match flow {
                            AFlow::Val(v) => AFlow::Val(v.join(&AbsValue::Unit)),
                            _ => AFlow::Val(AbsValue::Unit),
                        }
                    }
                    None => match flow {
                        AFlow::Jump(l) if l == *label => AFlow::Val(AbsValue::Unit),
                        other => other,
                    },
                }
            }
            Expr::Run(label) => {
                let snapshot = self.state.clone();
                match self.jump_states.get_mut(label.as_str()) {
                    Some(existing) => existing.join_from(&snapshot),
                    None => {
                        self.jump_states.insert(label.as_str().to_owned(), snapshot);
                    }
                }
                AFlow::Jump(label.clone())
            }
            Expr::Return(pe) => {
                let v = self.eval_pexpr(env, pe);
                if let Some(slot) = self.ret_stack.last_mut() {
                    *slot = Some(match slot.take() {
                        Some(prev) => prev.join(&v),
                        None => v,
                    });
                }
                AFlow::Ret
            }
        }
    }

    /// Evaluate each alternative on a copy of the current state and join the
    /// surviving outcomes.
    fn eval_branches(&mut self, env: &Env, bodies: &[&Expr]) -> AFlow {
        if self.path_mode() {
            let branches: Vec<(Option<Atom>, &Expr)> = bodies.iter().map(|b| (None, *b)).collect();
            return self.eval_forked(env, branches);
        }
        let saved_def = self.definite;
        self.definite = false;
        let saved_state = self.state.clone();
        let mut results = Vec::new();
        for body in bodies {
            self.state = saved_state.clone();
            let mut env2 = env.clone();
            let flow = self.eval_expr(&mut env2, body);
            results.push((flow, self.state.clone()));
        }
        self.definite = saved_def;
        self.join_results(results)
    }

    /// Path-mode fork over effectful branches, each under its constraint (if
    /// any) on a copy of the state. Infeasible branches are pruned; when only
    /// one branch survives, its findings keep full definiteness (the `May` →
    /// `Must` flip); definite findings shared by all survivors stay definite.
    fn eval_forked(&mut self, env: &Env, branches: Vec<(Option<Atom>, &Expr)>) -> AFlow {
        if !self.path_mode() {
            let bodies: Vec<&Expr> = branches.iter().map(|(_, b)| *b).collect();
            return self.eval_branches(env, &bodies);
        }
        let saved_state = self.state.clone();
        let mut results = Vec::new();
        let mut frames = Vec::new();
        for (atom, body) in branches {
            let depth = self.path.len();
            if let Some(a) = atom {
                self.path.push(a);
                if !self.path_feasible() {
                    self.path.truncate(depth);
                    self.paths_pruned += 1;
                    continue;
                }
            }
            self.paths_explored += 1;
            self.finding_frames.push(Frame::new());
            self.state = saved_state.clone();
            let mut env2 = env.clone();
            let flow = self.eval_expr(&mut env2, body);
            frames.push(self.finding_frames.pop().expect("fork frame"));
            self.path.truncate(depth);
            results.push((flow, self.state.clone()));
        }
        if results.is_empty() {
            // Every branch was infeasible: the fork is unreachable under the
            // current path; leave the state untouched.
            self.state = saved_state;
            return AFlow::Val(AbsValue::Top);
        }
        self.merge_sibling_findings(frames);
        self.join_results(results)
    }

    /// Join branch outcomes: the post-state is the join of the states of the
    /// branches that fall through (jumping branches parked their state in
    /// `jump_states`; returning branches accumulated into `ret_stack`).
    fn join_results(&mut self, results: Vec<(AFlow, State)>) -> AFlow {
        let mut value: Option<AbsValue> = None;
        let mut val_state: Option<State> = None;
        for (flow, state) in &results {
            if let AFlow::Val(v) = flow {
                value = Some(match value {
                    Some(j) => j.join(v),
                    None => v.clone(),
                });
                match &mut val_state {
                    Some(s) => s.join_from(state),
                    None => val_state = Some(state.clone()),
                }
            }
        }
        if let Some(s) = val_state {
            self.state = s;
            return AFlow::Val(value.unwrap_or(AbsValue::Top));
        }
        // No branch falls through: propagate a jump if there is one (its
        // state is registered at the run site), otherwise return.
        let mut all_states: Option<State> = None;
        for (_, state) in &results {
            match &mut all_states {
                Some(s) => s.join_from(state),
                None => all_states = Some(state.clone()),
            }
        }
        if let Some(s) = all_states {
            self.state = s;
        }
        for (flow, _) in results {
            if let AFlow::Jump(l) = flow {
                return AFlow::Jump(l);
            }
        }
        AFlow::Ret
    }

    fn eval_save(&mut self, env: &mut Env, label: &Ident, body: &Expr) -> AFlow {
        let key = label.as_str().to_owned();
        let mut iterations = 0usize;
        loop {
            if let Some(js) = self.jump_states.remove(&key) {
                self.state.join_from(&js);
            }
            let flow = self.eval_expr(env, body);
            let jumped_here = matches!(&flow, AFlow::Jump(l) if l.as_str() == key);
            let pending = self.jump_states.contains_key(&key);
            if !jumped_here && !pending {
                return flow;
            }
            iterations += 1;
            self.definite = false;
            if iterations >= self.config.loop_bound || self.budget_exhausted {
                self.jump_states.remove(&key);
                self.widen_after_loop();
                return match flow {
                    AFlow::Jump(l) if l.as_str() == key => AFlow::Val(AbsValue::Top),
                    other => other,
                };
            }
        }
    }

    /// The loop bound was hit: further iterations could have written anything
    /// the loop body writes, so give up on value precision.
    fn widen_after_loop(&mut self) {
        for a in &mut self.state.allocs {
            if a.life != Lifetime::Dead {
                a.content = AbsValue::Top;
                a.init = a.init.touched();
            }
        }
    }

    fn contains_save(e: &Expr, label: &Ident) -> bool {
        match e {
            Expr::Save(l, body) => l == label || Self::contains_save(body, label),
            Expr::Exit(_, body) | Expr::Indet(body) | Expr::Bound(body) => {
                Self::contains_save(body, label)
            }
            Expr::Let(_, _, body) => Self::contains_save(body, label),
            Expr::If(_, t, f) => Self::contains_save(t, label) || Self::contains_save(f, label),
            Expr::Case(_, arms) => arms.iter().any(|(_, b)| Self::contains_save(b, label)),
            Expr::Unseq(items) | Expr::Nd(items) | Expr::Par(items) => {
                items.iter().any(|i| Self::contains_save(i, label))
            }
            Expr::Wseq(_, a, b) | Expr::Sseq(_, a, b) => {
                Self::contains_save(a, label) || Self::contains_save(b, label)
            }
            _ => false,
        }
    }

    /// Skip forward through `e` to the `save` for `label` (forward `goto` /
    /// `switch` dispatch), mirroring the concrete interpreter's seeking mode.
    /// Bindings on the skipped prefix stay unbound and read back as `Top`.
    fn eval_seeking(&mut self, env: &mut Env, e: &Expr, label: &Ident) -> AFlow {
        if self.tick() {
            return AFlow::Val(AbsValue::Top);
        }
        match e {
            Expr::Save(l, body) => {
                if l == label {
                    self.eval_save(env, label, body)
                } else if Self::contains_save(body, label) {
                    let flow = self.eval_seeking(env, body, label);
                    match flow {
                        AFlow::Jump(j) if &j == l => self.eval_save(env, l, body),
                        other => other,
                    }
                } else {
                    AFlow::Val(AbsValue::Top)
                }
            }
            Expr::Exit(l, body) => {
                let flow = self.eval_seeking(env, body, label);
                let pending = self.jump_states.remove(l.as_str());
                if let Some(js) = pending {
                    self.state.join_from(&js);
                    self.definite = false;
                    return AFlow::Val(AbsValue::Unit);
                }
                match flow {
                    AFlow::Jump(j) if &j == l => AFlow::Val(AbsValue::Unit),
                    other => other,
                }
            }
            Expr::Sseq(pat, a, b) | Expr::Wseq(pat, a, b) => {
                if Self::contains_save(a, label) {
                    let flow = self.eval_seeking(env, a, label);
                    match flow {
                        AFlow::Val(v) => {
                            Self::bind(env, pat, v);
                            self.eval_expr(env, b)
                        }
                        AFlow::Jump(l) => {
                            if Self::contains_save(b, &l) {
                                self.eval_seeking(env, b, &l)
                            } else {
                                AFlow::Jump(l)
                            }
                        }
                        other => other,
                    }
                } else {
                    self.eval_seeking(env, b, label)
                }
            }
            Expr::Let(_, _, body) | Expr::Indet(body) | Expr::Bound(body) => {
                self.eval_seeking(env, body, label)
            }
            Expr::If(_, t, f) => {
                if Self::contains_save(t, label) {
                    self.eval_seeking(env, t, label)
                } else {
                    self.eval_seeking(env, f, label)
                }
            }
            Expr::Case(_, arms) => {
                for (_, body) in arms {
                    if Self::contains_save(body, label) {
                        return self.eval_seeking(env, body, label);
                    }
                }
                AFlow::Val(AbsValue::Top)
            }
            Expr::Unseq(items) | Expr::Nd(items) | Expr::Par(items) => {
                for item in items {
                    if Self::contains_save(item, label) {
                        return self.eval_seeking(env, item, label);
                    }
                }
                AFlow::Val(AbsValue::Top)
            }
            _ => AFlow::Val(AbsValue::Top),
        }
    }

    // ----- memory actions --------------------------------------------------------

    fn eval_action(&mut self, env: &mut Env, action: &MemAction, negative: bool) -> AFlow {
        match action {
            MemAction::Create { ty, .. } => {
                let tv = self.eval_pexpr(env, ty);
                let cty = self.as_ctype(&tv);
                let size = cty.as_ref().and_then(|t| self.size_of_ty(t));
                let id = self.alloc(StorageKind::Stack, cty, size, InitState::Uninit, "<auto>");
                AFlow::Val(AbsValue::Ptr(AbsPtr::to_target(id)))
            }
            MemAction::Alloc { size, .. } => {
                let sv = self.eval_pexpr(env, size);
                let size = self.as_int(&sv).and_then(|s| u64::try_from(s).ok());
                let id = self.alloc(StorageKind::Heap, None, size, InitState::Uninit, "<alloc>");
                AFlow::Val(AbsValue::Ptr(AbsPtr::to_target(id)))
            }
            MemAction::Kill(ptr) => {
                let pv = self.eval_pexpr(env, ptr);
                let p = self.as_ptr(&pv);
                // End-of-block kills are lenient in the concrete interpreter;
                // abstractly they just end the lifetime.
                if let Some(id) = p.single() {
                    self.state.allocs[id].life = Lifetime::Dead;
                } else {
                    for &id in &p.targets {
                        let a = &mut self.state.allocs[id];
                        a.life = a.life.join(Lifetime::Dead);
                    }
                }
                AFlow::Val(AbsValue::Unit)
            }
            MemAction::Store { ty, ptr, value, .. } => {
                let tv = self.eval_pexpr(env, ty);
                let pv = self.eval_pexpr(env, ptr);
                let v = self.eval_pexpr(env, value);
                let p = self.as_ptr(&pv);
                let cty = self.as_ctype(&tv);
                self.deref_check(&p, cty.as_ref(), true);
                self.apply_store(&p, cty.as_ref(), v);
                self.record_access(&p, true, negative);
                AFlow::Val(AbsValue::Unit)
            }
            MemAction::Load { ty, ptr, .. } => {
                let tv = self.eval_pexpr(env, ty);
                let pv = self.eval_pexpr(env, ptr);
                let p = self.as_ptr(&pv);
                let cty = self.as_ctype(&tv);
                self.deref_check(&p, cty.as_ref(), false);
                self.record_access(&p, false, negative);
                AFlow::Val(self.apply_load(&p, cty.as_ref()))
            }
        }
    }

    /// The checks every model performs before honouring an access.
    fn deref_check(&mut self, p: &AbsPtr, ty: Option<&Ctype>, write: bool) {
        let what = if write { "store" } else { "load" };
        if p.definitely_null() {
            self.finding(
                UbKind::NullPointerDeref,
                true,
                format!("{what} through a pointer that is definitely null"),
            );
            return;
        }
        if p.null {
            self.finding(
                UbKind::NullPointerDeref,
                false,
                format!("{what} through a possibly-null pointer"),
            );
        }
        if p.any {
            self.finding(
                UbKind::AccessWithoutProvenance,
                false,
                format!("{what} through a pointer with no tracked provenance"),
            );
            self.finding(
                UbKind::OutOfBoundsAccess,
                false,
                format!("{what} through a pointer the analyzer cannot bound"),
            );
            if p.from_int && p.targets.is_empty() {
                self.finding(
                    UbKind::InvalidLvalue,
                    false,
                    format!("{what} through a pointer forged from an arbitrary integer"),
                );
            }
        }
        if p.from_int && !p.targets.is_empty() {
            // The pointer went through an integer round trip. The models
            // that do not track provenance across integers report the
            // access as provenance-free even when the address is right.
            let subject = p
                .targets
                .iter()
                .next()
                .map(|&id| self.state.allocs[id].name.clone())
                .unwrap_or_else(|| "?".to_owned());
            self.finding_with(
                UbKind::AccessWithoutProvenance,
                false,
                format!("{what} through a pointer reconstructed from an integer"),
                vec![Atom::Pred {
                    name: format!("from_int(&{subject})"),
                    positive: true,
                }],
            );
        }
        let is_single = p.single().is_some();
        let access_size = ty.and_then(|t| self.size_of_ty(t));
        let targets: Vec<AllocId> = p.targets.iter().copied().collect();
        for id in targets {
            let (life, kind, size, name, decl_ty, last_store) = {
                let a = &self.state.allocs[id];
                (
                    a.life,
                    a.kind,
                    a.size,
                    a.name.clone(),
                    a.ty.clone(),
                    a.last_store.clone(),
                )
            };
            match life {
                Lifetime::Dead => self.finding(
                    UbKind::AccessOutsideLifetime,
                    is_single,
                    format!("{what} to `{name}` after its lifetime ended"),
                ),
                Lifetime::MaybeDead => self.finding_with(
                    UbKind::AccessOutsideLifetime,
                    false,
                    format!("{what} to `{name}` whose lifetime may have ended"),
                    vec![Atom::Pred {
                        name: format!("live({name})"),
                        positive: false,
                    }],
                ),
                Lifetime::Live => {}
            }
            if life != Lifetime::Live {
                // Models that recycle a dead region classify the same access
                // as out of bounds rather than outside-lifetime.
                self.finding(
                    UbKind::OutOfBoundsAccess,
                    false,
                    format!("{what} to the possibly-recycled region of `{name}`"),
                );
            }
            if write && kind == StorageKind::StringLit {
                self.finding(
                    UbKind::StringLiteralModification,
                    is_single,
                    format!("store into the string literal object `{name}`"),
                );
            }
            let offset = if is_single { p.offset } else { None };
            match (offset, size, access_size) {
                (Some(off), Some(size), Some(len)) => {
                    if off < 0 || off + i128::from(len) > i128::from(size) {
                        self.finding(
                            UbKind::OutOfBoundsAccess,
                            is_single,
                            format!(
                                "{what} of {len} bytes at byte {off} of `{name}` ({size} bytes)"
                            ),
                        );
                    }
                }
                _ => {
                    // The access cannot be proven in-bounds; a may-analysis
                    // must keep the possibility open.
                    self.finding(
                        UbKind::OutOfBoundsAccess,
                        false,
                        format!("{what} to `{name}` at an offset the analyzer cannot bound"),
                    );
                }
            }
            // Effective-type rules. A character-typed access inspects the
            // object representation and is always permitted (6.5p7);
            // anything else is checked against the declared type and the
            // last store. Both loads *and* stores are checked — the
            // strictest models flag a wrongly-typed store as the violation
            // itself, not just the later read.
            if let Some(t) = ty {
                if !t.is_character() {
                    let decl_mismatch = match &decl_ty {
                        None => false,
                        Some(decl) if decl == t => false,
                        // The strict effective-type models treat any
                        // member-typed access to an aggregate object as an
                        // access at the wrong type: the object's effective
                        // type is the aggregate itself.
                        Some(Ctype::Struct(_) | Ctype::Union(_)) => true,
                        Some(decl) => !Self::decl_compatible(decl, t),
                    };
                    if decl_mismatch {
                        self.finding(
                            UbKind::EffectiveTypeViolation,
                            false,
                            format!(
                                "{what} at a type incompatible with the effective type of `{name}`"
                            ),
                        );
                    }
                    if let Some(stored) = &last_store {
                        if !self.repr_compatible(stored, t) {
                            self.finding(
                                UbKind::EffectiveTypeViolation,
                                false,
                                format!(
                                    "{what} at a type incompatible with the last store to `{name}`"
                                ),
                            );
                        }
                    }
                }
            }
        }
    }

    /// Whether an access at `access` is plausibly compatible with an object
    /// declared at `decl` (loose: any member/element of an aggregate counts).
    fn decl_compatible(decl: &Ctype, access: &Ctype) -> bool {
        if decl == access || access.is_character() {
            return true;
        }
        if decl.is_character() {
            // A char object gives a wider access no effective-type cover in
            // this direction: reading an int out of a char array is the
            // textbook 6.5p6 violation.
            return false;
        }
        match decl {
            Ctype::Integer(_) => access.is_integer(),
            Ctype::Pointer(..) => matches!(access, Ctype::Pointer(..)),
            Ctype::Array(elem, _) => Self::decl_compatible(elem, access),
            Ctype::Struct(_) | Ctype::Union(_) => {
                // Without chasing the member at the concrete byte offset,
                // accept any access; union punning is caught by the
                // last-store check instead.
                true
            }
            _ => true,
        }
    }

    /// Whether loading at `access` after a store at `stored` reuses the same
    /// representation (the effective-type read rule, 6.5p6/p7).
    fn repr_compatible(&self, stored: &Ctype, access: &Ctype) -> bool {
        if stored == access || access.is_character() || stored.is_character() {
            return true;
        }
        match (stored, access) {
            (Ctype::Integer(a), Ctype::Integer(b)) => {
                self.ienv.integer_size(*a) == self.ienv.integer_size(*b)
                    && self.ienv.is_signed(*a) == self.ienv.is_signed(*b)
            }
            (Ctype::Pointer(..), Ctype::Pointer(..)) => true,
            _ => false,
        }
    }

    fn apply_store(&mut self, p: &AbsPtr, ty: Option<&Ctype>, v: AbsValue) {
        if p.any {
            // A store through an untracked pointer may hit anything live.
            for a in &mut self.state.allocs {
                if a.life != Lifetime::Dead {
                    a.content = AbsValue::Top;
                    a.init = a.init.touched();
                    a.last_store = None;
                }
            }
            return;
        }
        let access_size = ty.and_then(|t| self.size_of_ty(t));
        if let Some(id) = p.single() {
            let whole = p.offset == Some(0)
                && access_size.is_some()
                && access_size == self.state.allocs[id].size;
            let a = &mut self.state.allocs[id];
            if whole && a.life == Lifetime::Live {
                a.content = v;
                a.init = InitState::Init;
            } else {
                a.content = AbsValue::Top;
                a.init = a.init.touched();
            }
            a.last_store = ty.cloned();
            return;
        }
        for &id in &p.targets {
            let a = &mut self.state.allocs[id];
            a.content = AbsValue::Top;
            a.init = a.init.touched();
            a.last_store = None;
        }
    }

    fn apply_load(&mut self, p: &AbsPtr, ty: Option<&Ctype>) -> AbsValue {
        let access_size = ty.and_then(|t| self.size_of_ty(t));
        if let Some(id) = p.single() {
            let (whole, init, content, name) = {
                let a = &self.state.allocs[id];
                (
                    p.offset == Some(0) && access_size.is_some() && access_size == a.size,
                    a.init,
                    a.content.clone(),
                    a.name.clone(),
                )
            };
            match init {
                InitState::Uninit => {
                    self.finding(
                        UbKind::IndeterminateValueUse,
                        true,
                        format!("load from `{name}` before any store to it"),
                    );
                    return AbsValue::Unspec(ty.cloned());
                }
                InitState::MaybeInit => {
                    self.finding(
                        UbKind::IndeterminateValueUse,
                        false,
                        format!("load from `{name}` that may precede initialisation"),
                    );
                    return AbsValue::Top;
                }
                InitState::Init => {}
            }
            if whole && matches!(content, AbsValue::Spec(_) | AbsValue::Unspec(_)) {
                // A pointer representation read back at an integer type (a
                // union pun or memcpy into an integer) materialises as an
                // integer that merely *carries* the provenance: casting it
                // back to a pointer is then the integer round-trip case.
                if let Some(t) = ty {
                    if t.is_integer() {
                        if let AbsValue::Spec(inner) = &content {
                            if let AbsValue::Ptr(ptr) = &**inner {
                                return AbsValue::spec(AbsValue::Int {
                                    val: None,
                                    sym: None,
                                    prov: Some(ptr.clone()),
                                });
                            }
                        }
                    }
                }
                return content;
            }
            // Definitely-initialised but value-imprecise integer load: track
            // it symbolically so later branches on it accumulate constraints.
            if let Some(t) = ty {
                if t.is_integer() {
                    let sym = self.mint_sym(format!("load({name})"));
                    if sym.is_some() {
                        return AbsValue::spec(AbsValue::Int {
                            val: None,
                            sym,
                            prov: None,
                        });
                    }
                }
            }
        }
        AbsValue::Top
    }

    fn record_access(&mut self, p: &AbsPtr, write: bool, negative: bool) {
        if let Some(frame) = self.fp_stack.last_mut() {
            frame.push(AbsAccess {
                targets: p.targets.clone(),
                any: p.any,
                write,
                negative,
            });
        }
    }

    /// Report an unsequenced race between two footprints. With
    /// `negative_only`, only negative-polarity actions of the first footprint
    /// participate (weak sequencing).
    fn check_race(&mut self, first: &[AbsAccess], second: &[AbsAccess], negative_only: bool) {
        for a in first {
            if negative_only && !a.negative {
                continue;
            }
            for b in second {
                if !(a.write || b.write) {
                    continue;
                }
                if a.any || b.any {
                    continue;
                }
                if a.targets.is_disjoint(&b.targets) {
                    continue;
                }
                let certain = a.targets.len() == 1 && b.targets.len() == 1;
                self.finding(
                    UbKind::UnsequencedRace,
                    certain,
                    "conflicting unsequenced accesses to the same object",
                );
                return;
            }
        }
    }

    fn merge_frames(&mut self, frames: Vec<Vec<AbsAccess>>) {
        if let Some(parent) = self.fp_stack.last_mut() {
            for frame in frames {
                parent.extend(frame);
            }
        }
    }

    // ----- C library builtins ----------------------------------------------------

    fn call_builtin(&mut self, name: &str, args: &[AbsValue]) -> Option<AFlow> {
        let arg_ptr = |i: usize, it: &Interp| {
            args.get(i)
                .map(|v| it.as_ptr(v))
                .unwrap_or_else(AbsPtr::wild)
        };
        let arg_int = |i: usize, it: &Interp| args.get(i).and_then(|v| it.as_int(v));
        let char_ty = Ctype::integer(IntegerType::Char);
        match name {
            "malloc" | "calloc" => {
                let size = if name == "calloc" {
                    match (arg_int(0, self), arg_int(1, self)) {
                        (Some(n), Some(m)) => n.checked_mul(m),
                        _ => None,
                    }
                } else {
                    arg_int(0, self)
                };
                let size = size.and_then(|s| u64::try_from(s).ok());
                let init = if name == "calloc" {
                    InitState::Init
                } else {
                    InitState::Uninit
                };
                let id = self.alloc(StorageKind::Heap, None, size, init, name);
                Some(AFlow::Val(AbsValue::spec(AbsValue::Ptr(
                    AbsPtr::to_target(id),
                ))))
            }
            "free" => {
                let p = arg_ptr(0, self);
                if !p.definitely_null() {
                    if p.null && p.targets.is_empty() && p.any {
                        // Nothing tracked: stay silent.
                    } else {
                        for &id in &p.targets.clone() {
                            let (life, kind, name_) = {
                                let a = &self.state.allocs[id];
                                (a.life, a.kind, a.name.clone())
                            };
                            let single = p.single() == Some(id);
                            match life {
                                Lifetime::Dead => self.finding(
                                    UbKind::InvalidFree,
                                    single,
                                    format!("free of `{name_}` after its lifetime already ended"),
                                ),
                                Lifetime::MaybeDead => self.finding(
                                    UbKind::InvalidFree,
                                    false,
                                    format!("free of `{name_}` that may already be freed"),
                                ),
                                Lifetime::Live if kind != StorageKind::Heap => self.finding(
                                    UbKind::InvalidFree,
                                    single,
                                    format!("free of `{name_}`, which is not a heap allocation"),
                                ),
                                Lifetime::Live => {}
                            }
                            let a = &mut self.state.allocs[id];
                            a.life = if single {
                                Lifetime::Dead
                            } else {
                                a.life.join(Lifetime::Dead)
                            };
                        }
                    }
                }
                Some(AFlow::Val(AbsValue::spec(AbsValue::Unit)))
            }
            "memcpy" | "strcpy" => {
                let dst = arg_ptr(0, self);
                let src = arg_ptr(1, self);
                self.deref_check(&src, Some(&char_ty), false);
                self.deref_check(&dst, Some(&char_ty), true);
                let n = if name == "memcpy" {
                    arg_int(2, self)
                } else {
                    None
                };
                let whole_copy = match (dst.single(), src.single(), n) {
                    (Some(d), Some(s), Some(n)) => {
                        let n = u64::try_from(n).ok();
                        dst.offset == Some(0)
                            && src.offset == Some(0)
                            && n.is_some()
                            && self.state.allocs[d].size == n
                            && self.state.allocs[s].size == n
                    }
                    _ => false,
                };
                if whole_copy {
                    let (d, s) = (dst.single().unwrap(), src.single().unwrap());
                    let (content, init, last) = {
                        let sa = &self.state.allocs[s];
                        (sa.content.clone(), sa.init, sa.last_store.clone())
                    };
                    let da = &mut self.state.allocs[d];
                    da.content = content;
                    da.init = init;
                    da.last_store = last;
                } else {
                    self.apply_store(&dst, None, AbsValue::Top);
                }
                self.record_access(&src, false, false);
                self.record_access(&dst, true, false);
                Some(AFlow::Val(AbsValue::spec(AbsValue::Ptr(dst))))
            }
            "memset" => {
                let dst = arg_ptr(0, self);
                self.deref_check(&dst, Some(&char_ty), true);
                let n = arg_int(2, self).and_then(|n| u64::try_from(n).ok());
                if let Some(id) = dst.single() {
                    if dst.offset == Some(0) && n.is_some() && n == self.state.allocs[id].size {
                        let a = &mut self.state.allocs[id];
                        a.content = AbsValue::Top;
                        a.init = InitState::Init;
                        a.last_store = None;
                    } else {
                        self.apply_store(&dst, None, AbsValue::Top);
                    }
                } else {
                    self.apply_store(&dst, None, AbsValue::Top);
                }
                self.record_access(&dst, true, false);
                Some(AFlow::Val(AbsValue::spec(AbsValue::Ptr(dst))))
            }
            "memcmp" | "strcmp" => {
                let a = arg_ptr(0, self);
                let b = arg_ptr(1, self);
                self.deref_check(&a, Some(&char_ty), false);
                self.deref_check(&b, Some(&char_ty), false);
                self.record_access(&a, false, false);
                self.record_access(&b, false, false);
                Some(AFlow::Val(AbsValue::spec(AbsValue::unknown_int())))
            }
            "strlen" => {
                let p = arg_ptr(0, self);
                self.deref_check(&p, Some(&char_ty), false);
                self.record_access(&p, false, false);
                Some(AFlow::Val(AbsValue::spec(AbsValue::unknown_int())))
            }
            "printf" => Some(AFlow::Val(AbsValue::spec(AbsValue::unknown_int()))),
            "abort" | "exit" => Some(AFlow::Ret),
            "assert" => Some(AFlow::Val(AbsValue::spec(AbsValue::Unit))),
            _ => None,
        }
    }

    // ----- memory-involving pointer operations -----------------------------------

    fn eval_memop(&mut self, env: &mut Env, op: PtrOp, args: &[PExpr]) -> AFlow {
        let values: Vec<AbsValue> = args.iter().map(|a| self.eval_pexpr(env, a)).collect();
        let spec_int = |v: Option<i128>| {
            AFlow::Val(AbsValue::spec(AbsValue::Int {
                val: v,
                sym: None,
                prov: None,
            }))
        };
        match op {
            PtrOp::Eq | PtrOp::Ne => {
                let a = self.as_ptr(&values[0]);
                let b = self.as_ptr(&values[1]);
                let eq = if a.definitely_null() && b.definitely_null() {
                    Some(true)
                } else if (a.definitely_null() && b.single().is_some())
                    || (b.definitely_null() && a.single().is_some())
                {
                    Some(false)
                } else {
                    match (a.single(), b.single()) {
                        (Some(x), Some(y)) if x == y => match (a.offset, b.offset) {
                            (Some(o1), Some(o2)) => Some(o1 == o2),
                            _ => None,
                        },
                        _ => None,
                    }
                };
                let flip = op == PtrOp::Ne;
                if eq.is_none() {
                    // Equality of pointers into *distinct* objects depends
                    // only on the allocator's layout choice: mint a boolean
                    // symbol linked to a constraint over the symbolic base
                    // addresses, so branches on the comparison carry a
                    // layout constraint (and its witness realises e.g. the
                    // one-past-the-end-meets-adjacent-base aliasing).
                    if let (Some(x), Some(y), Some(o1), Some(o2)) =
                        (a.single(), b.single(), a.offset, b.offset)
                    {
                        if let (Some(bx), Some(by)) = (self.base_sym(x), self.base_sym(y)) {
                            let addr_eq = Atom::Cmp {
                                lhs: Term::var(bx, o1),
                                rel: Rel::Eq,
                                rhs: Term::var(by, o2),
                            };
                            let (nx, ny) = (
                                self.state.allocs[x].name.clone(),
                                self.state.allocs[y].name.clone(),
                            );
                            let op_txt = if flip { "!=" } else { "==" };
                            let sym = self.mint_sym(format!("(&{nx}+{o1} {op_txt} &{ny}+{o2})"));
                            if let Some((s, _)) = sym {
                                let atom = if flip { addr_eq.negate() } else { addr_eq };
                                self.linked_syms.insert(s.0, atom);
                                return AFlow::Val(AbsValue::spec(AbsValue::Int {
                                    val: None,
                                    sym,
                                    prov: None,
                                }));
                            }
                        }
                    }
                }
                spec_int(eq.map(|e| i128::from(e != flip)))
            }
            PtrOp::Lt | PtrOp::Gt | PtrOp::Le | PtrOp::Ge => {
                let a = self.as_ptr(&values[0]);
                let b = self.as_ptr(&values[1]);
                match (a.single(), b.single()) {
                    (Some(x), Some(y)) if x == y => {
                        let v = match (a.offset, b.offset) {
                            (Some(o1), Some(o2)) => Some(match op {
                                PtrOp::Lt => o1 < o2,
                                PtrOp::Gt => o1 > o2,
                                PtrOp::Le => o1 <= o2,
                                _ => o1 >= o2,
                            }),
                            _ => None,
                        };
                        spec_int(v.map(i128::from))
                    }
                    (Some(_), Some(_)) => {
                        self.finding(
                            UbKind::RelationalCompareDifferentObjects,
                            true,
                            "relational comparison of pointers to different objects",
                        );
                        spec_int(None)
                    }
                    _ => {
                        self.finding(
                            UbKind::RelationalCompareDifferentObjects,
                            false,
                            "relational comparison of pointers that may refer to different objects",
                        );
                        spec_int(None)
                    }
                }
            }
            PtrOp::Diff => {
                let a = self.as_ptr(&values[0]);
                let b = self.as_ptr(&values[1]);
                let elem = values.get(2).and_then(|v| self.as_ctype(v));
                match (a.single(), b.single()) {
                    (Some(x), Some(y)) if x == y => {
                        let size = elem.as_ref().and_then(|t| self.size_of_ty(t));
                        let v = match (a.offset, b.offset, size) {
                            (Some(o1), Some(o2), Some(s)) if s > 0 => {
                                Some((o1 - o2) / i128::from(s))
                            }
                            _ => None,
                        };
                        spec_int(v)
                    }
                    (Some(_), Some(_)) => {
                        self.finding(
                            UbKind::PointerSubtractionDifferentObjects,
                            true,
                            "subtraction of pointers into different objects",
                        );
                        spec_int(None)
                    }
                    _ => {
                        self.finding(
                            UbKind::PointerSubtractionDifferentObjects,
                            false,
                            "subtraction of pointers that may refer to different objects",
                        );
                        spec_int(None)
                    }
                }
            }
            PtrOp::IntFromPtr => {
                let p = self.as_ptr(&values[0]);
                let val = if p.definitely_null() { Some(0) } else { None };
                // The cast result is the symbolic base address plus the known
                // offset, so integer comparisons of cast pointers reduce to
                // the same difference constraints as direct pointer
                // comparisons.
                let sym = match (val, p.single(), p.offset) {
                    (None, Some(id), Some(off)) => self.base_sym(id).map(|base| (base, off)),
                    _ => None,
                };
                AFlow::Val(AbsValue::spec(AbsValue::Int {
                    val,
                    sym,
                    prov: Some(p),
                }))
            }
            PtrOp::PtrFromInt => {
                let p = self.as_ptr(&values[0]);
                AFlow::Val(AbsValue::spec(AbsValue::Ptr(p)))
            }
            PtrOp::ValidForDeref => {
                let p = self.as_ptr(&values[0]);
                let v = if p.definitely_null() {
                    Some(0)
                } else {
                    match p.single() {
                        Some(id) => {
                            let a = &self.state.allocs[id];
                            match (a.life, p.offset, a.size) {
                                (Lifetime::Live, Some(off), Some(size))
                                    if off >= 0 && off < i128::from(size) =>
                                {
                                    Some(1)
                                }
                                (Lifetime::Dead, _, _) => Some(0),
                                _ => None,
                            }
                        }
                        None => None,
                    }
                };
                if v.is_none() {
                    if let Some(id) = p.single() {
                        let name = self.state.allocs[id].name.clone();
                        if let Some(sym) = self.mint_sym(format!("valid(&{name})")) {
                            return AFlow::Val(AbsValue::spec(AbsValue::Int {
                                val: None,
                                sym: Some(sym),
                                prov: None,
                            }));
                        }
                    }
                }
                spec_int(v)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use cerberus_core::program::CoreProc;
    use cerberus_core::syntax::MemOrder;

    fn int_ty() -> Ctype {
        Ctype::integer(IntegerType::Int)
    }

    fn proc_program(body: Expr) -> CoreProgram {
        let mut p = CoreProgram::default();
        p.procs.insert(
            "main".to_owned(),
            CoreProc {
                name: Ident::new("main"),
                params: vec![],
                return_ty: int_ty(),
                body,
            },
        );
        p.main = Some(Ident::new("main"));
        p
    }

    fn create_int() -> Expr {
        Expr::Action(
            Polarity::Positive,
            MemAction::Create {
                align: Box::new(PExpr::Integer(4)),
                ty: Box::new(PExpr::CtypeConst(int_ty())),
            },
        )
    }

    fn store_int(ptr: &str, value: PExpr) -> Expr {
        Expr::Action(
            Polarity::Positive,
            MemAction::Store {
                ty: Box::new(PExpr::CtypeConst(int_ty())),
                ptr: Box::new(PExpr::sym(ptr)),
                value: Box::new(value),
                order: MemOrder::NA,
            },
        )
    }

    fn load_int(ptr: &str) -> Expr {
        Expr::Action(
            Polarity::Positive,
            MemAction::Load {
                ty: Box::new(PExpr::CtypeConst(int_ty())),
                ptr: Box::new(PExpr::sym(ptr)),
                order: MemOrder::NA,
            },
        )
    }

    #[test]
    fn reachable_undef_is_a_must_finding() {
        let program = proc_program(Expr::Pure(PExpr::Undef(UbKind::DivisionByZero)));
        let report = analyze(&program, &ImplEnv::default());
        assert_eq!(
            report.reports(UbKind::DivisionByZero),
            Some(FindingSeverity::Must)
        );
    }

    #[test]
    fn undef_under_unknown_branch_is_may() {
        // if (unknown) then Undef else pure — the analyzer cannot decide the
        // condition, so the finding is May.
        let body = Expr::Sseq(
            Pattern::sym("p"),
            Box::new(create_int()),
            Box::new(Expr::Sseq(
                Pattern::Wildcard,
                Box::new(store_int("p", PExpr::specified_int(1))),
                Box::new(Expr::Sseq(
                    Pattern::sym("v"),
                    Box::new(load_int("p")),
                    Box::new(Expr::If(
                        PExpr::Binop(
                            Binop::Eq,
                            Box::new(PExpr::sym("unbound")),
                            Box::new(PExpr::Integer(0)),
                        ),
                        Box::new(Expr::Pure(PExpr::Undef(UbKind::ShiftTooLarge))),
                        Box::new(Expr::Pure(PExpr::specified_int(0))),
                    )),
                )),
            )),
        );
        let report = analyze(&proc_program(body), &ImplEnv::default());
        assert_eq!(
            report.reports(UbKind::ShiftTooLarge),
            Some(FindingSeverity::May)
        );
    }

    #[test]
    fn load_before_store_is_indeterminate() {
        let body = Expr::Sseq(
            Pattern::sym("p"),
            Box::new(create_int()),
            Box::new(load_int("p")),
        );
        let report = analyze(&proc_program(body), &ImplEnv::default());
        assert_eq!(
            report.reports(UbKind::IndeterminateValueUse),
            Some(FindingSeverity::Must)
        );
    }

    #[test]
    fn initialised_load_is_clean() {
        let body = Expr::Sseq(
            Pattern::sym("p"),
            Box::new(create_int()),
            Box::new(Expr::Sseq(
                Pattern::Wildcard,
                Box::new(store_int("p", PExpr::specified_int(7))),
                Box::new(load_int("p")),
            )),
        );
        let report = analyze(&proc_program(body), &ImplEnv::default());
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn access_after_kill_is_outside_lifetime() {
        let body = Expr::Sseq(
            Pattern::sym("p"),
            Box::new(create_int()),
            Box::new(Expr::Sseq(
                Pattern::Wildcard,
                Box::new(store_int("p", PExpr::specified_int(1))),
                Box::new(Expr::Sseq(
                    Pattern::Wildcard,
                    Box::new(Expr::Action(
                        Polarity::Positive,
                        MemAction::Kill(Box::new(PExpr::sym("p"))),
                    )),
                    Box::new(load_int("p")),
                )),
            )),
        );
        let report = analyze(&proc_program(body), &ImplEnv::default());
        assert_eq!(
            report.reports(UbKind::AccessOutsideLifetime),
            Some(FindingSeverity::Must)
        );
    }

    #[test]
    fn null_store_is_flagged() {
        let body = Expr::Sseq(
            Pattern::sym("p"),
            Box::new(Expr::Pure(PExpr::NullPtr(int_ty()))),
            Box::new(store_int("p", PExpr::specified_int(1))),
        );
        let report = analyze(&proc_program(body), &ImplEnv::default());
        assert_eq!(
            report.reports(UbKind::NullPointerDeref),
            Some(FindingSeverity::Must)
        );
    }

    #[test]
    fn double_free_is_invalid() {
        let free = |p: &str| {
            Expr::Ccall(
                Box::new(PExpr::FunctionPtr(Ident::new("free"))),
                vec![PExpr::sym(p)],
            )
        };
        let body = Expr::Sseq(
            Pattern::Tuple(vec![Pattern::Specified(Box::new(Pattern::sym("p")))]),
            Box::new(Expr::Ccall(
                Box::new(PExpr::FunctionPtr(Ident::new("malloc"))),
                vec![PExpr::specified_int(4)],
            )),
            Box::new(Expr::Sseq(
                Pattern::Wildcard,
                Box::new(free("p")),
                Box::new(free("p")),
            )),
        );
        let report = analyze(&proc_program(body), &ImplEnv::default());
        assert_eq!(
            report.reports(UbKind::InvalidFree),
            Some(FindingSeverity::Must)
        );
    }

    #[test]
    fn string_literal_store_is_flagged() {
        let mut program = proc_program(store_int("lit", PExpr::specified_int(1)));
        program
            .string_literals
            .push((Ident::new("lit"), b"hi\0".to_vec()));
        let report = analyze(&program, &ImplEnv::default());
        assert_eq!(
            report.reports(UbKind::StringLiteralModification),
            Some(FindingSeverity::Must)
        );
    }

    #[test]
    fn infinite_loop_terminates_under_widening() {
        let label = Ident::new("head");
        let body = Expr::Save(
            label.clone(),
            Box::new(Expr::Sseq(
                Pattern::Wildcard,
                Box::new(Expr::Pure(PExpr::Unit)),
                Box::new(Expr::Run(label.clone())),
            )),
        );
        let report = analyze(&proc_program(body), &ImplEnv::default());
        assert!(report.aborted.is_none());
    }

    /// `v = load(p)` where the stored value is unknown: the load is tracked
    /// symbolically, and branching on `v == 0` twice accumulates constraints
    /// the solver can refute. Shape:
    /// `if (v == 0) outer_then else { if (v == 0) inner_then else inner_else }`
    /// — `inner_then` sits on the unsatisfiable path `v != 0 && v == 0`.
    fn branch_twice_on_symbolic_load(
        outer_then: Expr,
        inner_then: Expr,
        inner_else: Expr,
    ) -> CoreProgram {
        let v_is_zero = || {
            PExpr::Binop(
                Binop::Eq,
                Box::new(PExpr::sym("v")),
                Box::new(PExpr::Integer(0)),
            )
        };
        let body = Expr::Sseq(
            Pattern::sym("p"),
            Box::new(create_int()),
            Box::new(Expr::Sseq(
                Pattern::Wildcard,
                Box::new(store_int("p", PExpr::sym("junk"))),
                Box::new(Expr::Sseq(
                    Pattern::sym("v"),
                    Box::new(load_int("p")),
                    Box::new(Expr::If(
                        v_is_zero(),
                        Box::new(outer_then),
                        Box::new(Expr::If(
                            v_is_zero(),
                            Box::new(inner_then),
                            Box::new(inner_else),
                        )),
                    )),
                )),
            )),
        );
        proc_program(body)
    }

    #[test]
    fn contradictory_nested_branch_is_pruned() {
        // The undef sits on the unsatisfiable path v != 0 && v == 0. Path
        // mode prunes it entirely; the flow baseline joins and reports May.
        let program = branch_twice_on_symbolic_load(
            Expr::Pure(PExpr::specified_int(0)),
            Expr::Pure(PExpr::Undef(UbKind::ShiftTooLarge)),
            Expr::Pure(PExpr::specified_int(0)),
        );
        let report = analyze(&program, &ImplEnv::default());
        assert_eq!(report.reports(UbKind::ShiftTooLarge), None, "{report:?}");
        assert!(report.paths_pruned > 0, "{report:?}");

        let flow = crate::analyze_with(
            &program,
            &ImplEnv::default(),
            AnalysisConfig::default().flow_baseline(),
        );
        assert_eq!(
            flow.reports(UbKind::ShiftTooLarge),
            Some(FindingSeverity::May)
        );
    }

    #[test]
    fn pruning_a_sibling_flips_may_to_must() {
        // The undef fires on both feasible paths (the inner then-arm is
        // infeasible), so path mode proves Must where the flow baseline can
        // only join to May.
        let program = branch_twice_on_symbolic_load(
            Expr::Pure(PExpr::Undef(UbKind::ShiftTooLarge)),
            Expr::Pure(PExpr::specified_int(0)),
            Expr::Pure(PExpr::Undef(UbKind::ShiftTooLarge)),
        );
        let report = analyze(&program, &ImplEnv::default());
        assert_eq!(
            report.reports(UbKind::ShiftTooLarge),
            Some(FindingSeverity::Must),
            "{report:?}"
        );
        let must = report
            .findings
            .iter()
            .find(|f| f.ub == UbKind::ShiftTooLarge)
            .expect("finding");
        // The Must carries a satisfying assignment of its recorded path.
        match &must.witness {
            Witness::Assignment(bindings) => {
                assert!(!bindings.is_empty(), "{:?}", must.witness);
                assert_eq!(bindings[0].1, 0, "{:?}", must.witness);
            }
            other => panic!("Must finding with non-assignment witness: {other:?}"),
        }

        let flow = crate::analyze_with(
            &program,
            &ImplEnv::default(),
            AnalysisConfig::default().flow_baseline(),
        );
        assert_eq!(
            flow.reports(UbKind::ShiftTooLarge),
            Some(FindingSeverity::May)
        );
    }
}
