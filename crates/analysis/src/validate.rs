//! Core well-formedness validation.
//!
//! The elaborator is total on well-typed Ail and produces well-formed Core by
//! construction, so this pass is a lint gate for *producers* of Core: a
//! hand-written program, a mutated test case, or a regression in the
//! elaborator itself. Every violation is collected — the pass never stops at
//! the first problem — and reported as a [`ConstraintViolation`] so the
//! pipeline can surface the whole list through `PipelineError::Constraint`,
//! the same multi-diagnostic shape the desugaring stage uses.
//!
//! Checked properties, node by node:
//!
//! * **binding discipline** — every `Sym` is bound by an enclosing pattern, a
//!   procedure parameter, a global, or a string-literal object;
//! * **pattern arity** — a tuple pattern destructuring a literal tuple value
//!   names exactly as many components as the value has;
//! * **call-target resolution** — every `Ccall` names a defined procedure or
//!   a known builtin, with a matching argument count for defined procedures;
//! * **`MemAction` operand typing** — `create`/`store`/`load` carry a literal
//!   `Ctype` operand (the shape the elaborator emits and the executable
//!   semantics require), and `create`'s alignment is a type-derived constant;
//! * **label discipline** — every `run l` targets a `save`/`exit` label that
//!   exists somewhere in the same procedure body.

use std::collections::HashSet;

use cerberus_ast::diag::ConstraintViolation;
use cerberus_ast::ident::Ident;
use cerberus_ast::loc::Span;
use cerberus_core::program::CoreProgram;
use cerberus_core::syntax::{BuiltinFn, Expr, MemAction, PExpr, Pattern};

/// The builtin C library functions the execution environment provides; a
/// `Ccall` to one of these resolves even though no Core procedure exists.
/// Keep in sync with `cerberus_exec::builtins::call_builtin`.
pub fn builtin_names() -> &'static [&'static str] {
    &[
        "printf", "malloc", "calloc", "free", "memcpy", "memcmp", "memset", "strlen", "strcmp",
        "strcpy", "abort", "exit", "assert",
    ]
}

/// The ISO-clause slot used for Core well-formedness diagnostics (these are
/// internal-representation invariants, not ISO C constraints).
const CORE_CLAUSE: &str = "Core well-formedness";

struct Validator<'a> {
    program: &'a CoreProgram,
    /// Symbols visible everywhere: globals and string-literal objects.
    statics: HashSet<String>,
    /// All `save`/`exit` labels of the procedure under validation.
    labels: HashSet<String>,
    /// Name of the procedure (or pseudo-procedure) under validation.
    context: String,
    violations: Vec<ConstraintViolation>,
}

impl<'a> Validator<'a> {
    fn violation(&mut self, message: String) {
        self.violations.push(ConstraintViolation::new(
            message,
            CORE_CLAUSE,
            Span::synthetic(),
        ));
    }

    // ----- scope helpers ---------------------------------------------------

    fn bind_pattern(pat: &Pattern, scope: &mut Vec<String>) {
        match pat {
            Pattern::Wildcard => {}
            Pattern::Sym(name) => scope.push(name.as_str().to_owned()),
            Pattern::Tuple(ps) => {
                for p in ps {
                    Self::bind_pattern(p, scope);
                }
            }
            Pattern::Specified(p) | Pattern::Unspecified(p) => Self::bind_pattern(p, scope),
        }
    }

    fn is_bound(&self, name: &Ident, scope: &[String]) -> bool {
        let text = name.as_str();
        scope.iter().any(|s| s == text) || self.statics.contains(text)
    }

    /// A tuple pattern must match the arity of a literal tuple value; other
    /// scrutinee shapes are only checkable dynamically.
    fn check_pattern_arity(&mut self, pat: &Pattern, scrutinee: &PExpr) {
        if let (Pattern::Tuple(ps), PExpr::Tuple(vs)) = (pat, scrutinee) {
            if ps.len() != vs.len() && ps.len() != 1 {
                self.violation(format!(
                    "{}: tuple pattern of arity {} destructures a tuple of arity {}",
                    self.context,
                    ps.len(),
                    vs.len()
                ));
            }
        }
    }

    // ----- label collection ------------------------------------------------

    fn collect_labels(e: &Expr, into: &mut HashSet<String>) {
        match e {
            Expr::Save(l, body) | Expr::Exit(l, body) => {
                into.insert(l.as_str().to_owned());
                Self::collect_labels(body, into);
            }
            Expr::Let(_, _, body) | Expr::Indet(body) | Expr::Bound(body) => {
                Self::collect_labels(body, into)
            }
            Expr::If(_, t, f) => {
                Self::collect_labels(t, into);
                Self::collect_labels(f, into);
            }
            Expr::Case(_, arms) => {
                for (_, body) in arms {
                    Self::collect_labels(body, into);
                }
            }
            Expr::Wseq(_, a, b) | Expr::Sseq(_, a, b) => {
                Self::collect_labels(a, into);
                Self::collect_labels(b, into);
            }
            Expr::Unseq(items) | Expr::Nd(items) | Expr::Par(items) => {
                for item in items {
                    Self::collect_labels(item, into);
                }
            }
            _ => {}
        }
    }

    // ----- node checks -----------------------------------------------------

    fn check_pexpr(&mut self, pe: &PExpr, scope: &mut Vec<String>) {
        match pe {
            PExpr::Sym(name) => {
                if !self.is_bound(name, scope) {
                    self.violation(format!("{}: unbound Core symbol `{name}`", self.context));
                }
            }
            PExpr::Unit
            | PExpr::Boolean(_)
            | PExpr::Integer(_)
            | PExpr::CtypeConst(_)
            | PExpr::NullPtr(_)
            | PExpr::Undef(_)
            | PExpr::Error(_)
            | PExpr::Unspecified(_) => {}
            PExpr::FunctionPtr(name) => {
                let text = name.as_str();
                if self.program.proc(text).is_none() && !builtin_names().contains(&text) {
                    self.violation(format!(
                        "{}: function pointer to undefined function `{name}`",
                        self.context
                    ));
                }
            }
            PExpr::Specified(e) | PExpr::Not(e) => self.check_pexpr(e, scope),
            PExpr::Tuple(es) | PExpr::ArrayVal(es) => {
                for e in es {
                    self.check_pexpr(e, scope);
                }
            }
            PExpr::StructVal(_, fields) => {
                for (_, e) in fields {
                    self.check_pexpr(e, scope);
                }
            }
            PExpr::UnionVal(_, _, e) => self.check_pexpr(e, scope),
            PExpr::Binop(_, a, b) => {
                self.check_pexpr(a, scope);
                self.check_pexpr(b, scope);
            }
            PExpr::If(c, t, f) => {
                self.check_pexpr(c, scope);
                self.check_pexpr(t, scope);
                self.check_pexpr(f, scope);
            }
            PExpr::Case(scrutinee, arms) => {
                self.check_pexpr(scrutinee, scope);
                for (pat, body) in arms {
                    self.check_pattern_arity(pat, scrutinee);
                    let depth = scope.len();
                    Self::bind_pattern(pat, scope);
                    self.check_pexpr(body, scope);
                    scope.truncate(depth);
                }
            }
            PExpr::Let(pat, value, body) => {
                self.check_pexpr(value, scope);
                self.check_pattern_arity(pat, value);
                let depth = scope.len();
                Self::bind_pattern(pat, scope);
                self.check_pexpr(body, scope);
                scope.truncate(depth);
            }
            PExpr::Builtin(f, args) => {
                let arity = match f {
                    BuiltinFn::ConvInt
                    | BuiltinFn::IsRepresentable
                    | BuiltinFn::IntegerPromotion => 2,
                    _ => 1,
                };
                if args.len() != arity {
                    self.violation(format!(
                        "{}: builtin {f:?} applied to {} arguments, expected {arity}",
                        self.context,
                        args.len()
                    ));
                }
                for a in args {
                    self.check_pexpr(a, scope);
                }
            }
            PExpr::ArrayShift { ptr, index, .. } => {
                self.check_pexpr(ptr, scope);
                self.check_pexpr(index, scope);
            }
            PExpr::MemberShift { ptr, .. } => self.check_pexpr(ptr, scope),
        }
    }

    /// `create`/`store`/`load` must name their accessed type as a literal
    /// `Ctype` constant — the executable semantics dispatch on it.
    fn check_action_type_operand(&mut self, action: &'static str, ty: &PExpr) {
        if !matches!(ty, PExpr::CtypeConst(_)) {
            self.violation(format!(
                "{}: `{action}` type operand is not a literal Ctype constant",
                self.context
            ));
        }
    }

    fn check_action(&mut self, action: &MemAction, scope: &mut Vec<String>) {
        match action {
            MemAction::Create { align, ty } => {
                self.check_action_type_operand("create", ty);
                // The elaborator derives the alignment from the type.
                let align_ok = matches!(
                    &**align,
                    PExpr::Integer(_) | PExpr::Builtin(BuiltinFn::AlignOf, _)
                );
                if !align_ok {
                    self.violation(format!(
                        "{}: `create` alignment is neither a constant nor `alignof`",
                        self.context
                    ));
                }
                self.check_pexpr(align, scope);
                self.check_pexpr(ty, scope);
            }
            MemAction::Alloc { align, size } => {
                self.check_pexpr(align, scope);
                self.check_pexpr(size, scope);
            }
            MemAction::Kill(ptr) => self.check_pexpr(ptr, scope),
            MemAction::Store { ty, ptr, value, .. } => {
                self.check_action_type_operand("store", ty);
                self.check_pexpr(ty, scope);
                self.check_pexpr(ptr, scope);
                self.check_pexpr(value, scope);
            }
            MemAction::Load { ty, ptr, .. } => {
                self.check_action_type_operand("load", ty);
                self.check_pexpr(ty, scope);
                self.check_pexpr(ptr, scope);
            }
        }
    }

    fn check_expr(&mut self, e: &Expr, scope: &mut Vec<String>) {
        match e {
            Expr::Pure(pe) => self.check_pexpr(pe, scope),
            Expr::Memop(_, args) => {
                for a in args {
                    self.check_pexpr(a, scope);
                }
            }
            Expr::Action(_, action) => self.check_action(action, scope),
            Expr::Case(scrutinee, arms) => {
                self.check_pexpr(scrutinee, scope);
                for (pat, body) in arms {
                    self.check_pattern_arity(pat, scrutinee);
                    let depth = scope.len();
                    Self::bind_pattern(pat, scope);
                    self.check_expr(body, scope);
                    scope.truncate(depth);
                }
            }
            Expr::Let(pat, value, body) => {
                self.check_pexpr(value, scope);
                self.check_pattern_arity(pat, value);
                let depth = scope.len();
                Self::bind_pattern(pat, scope);
                self.check_expr(body, scope);
                scope.truncate(depth);
            }
            Expr::If(c, t, f) => {
                self.check_pexpr(c, scope);
                self.check_expr(t, scope);
                self.check_expr(f, scope);
            }
            Expr::Skip => {}
            Expr::Ccall(f, args) => {
                match &**f {
                    PExpr::FunctionPtr(name) | PExpr::Sym(name)
                        if self.program.proc(name.as_str()).is_some() =>
                    {
                        let proc = &self.program.procs[name.as_str()];
                        if proc.params.len() != args.len() {
                            self.violation(format!(
                                "{}: call to `{name}` passes {} arguments, expected {}",
                                self.context,
                                args.len(),
                                proc.params.len()
                            ));
                        }
                    }
                    PExpr::FunctionPtr(name) => {
                        if !builtin_names().contains(&name.as_str()) {
                            self.violation(format!(
                                "{}: call target `{name}` resolves to no procedure or builtin",
                                self.context
                            ));
                        }
                    }
                    // A call through a computed pointer is only checkable
                    // dynamically; validate the operand expression itself.
                    other => self.check_pexpr(other, scope),
                }
                for a in args {
                    self.check_pexpr(a, scope);
                }
            }
            Expr::Unseq(items) | Expr::Nd(items) | Expr::Par(items) => {
                for item in items {
                    self.check_expr(item, scope);
                }
            }
            Expr::Wseq(pat, a, b) | Expr::Sseq(pat, a, b) => {
                self.check_expr(a, scope);
                let depth = scope.len();
                Self::bind_pattern(pat, scope);
                self.check_expr(b, scope);
                scope.truncate(depth);
            }
            Expr::Indet(body) | Expr::Bound(body) => self.check_expr(body, scope),
            Expr::Save(_, body) | Expr::Exit(_, body) => self.check_expr(body, scope),
            Expr::Run(label) => {
                if !self.labels.contains(label.as_str()) {
                    self.violation(format!(
                        "{}: `run {label}` targets no save/exit label in the procedure",
                        self.context
                    ));
                }
            }
            Expr::Return(value) => self.check_pexpr(value, scope),
        }
    }
}

/// Validate a whole Core program, returning *every* violation found.
pub fn validate(program: &CoreProgram) -> Vec<ConstraintViolation> {
    let statics: HashSet<String> = program
        .globals
        .iter()
        .map(|g| g.name.as_str().to_owned())
        .chain(
            program
                .string_literals
                .iter()
                .map(|(name, _)| name.as_str().to_owned()),
        )
        .collect();

    let mut validator = Validator {
        program,
        statics,
        labels: HashSet::new(),
        context: String::new(),
        violations: Vec::new(),
    };

    for global in &program.globals {
        validator.context = format!("global `{}`", global.name);
        validator.labels.clear();
        Validator::collect_labels(&global.init, &mut validator.labels);
        let mut scope = Vec::new();
        validator.check_expr(&global.init, &mut scope);
    }

    let mut names: Vec<&String> = program.procs.keys().collect();
    names.sort();
    for name in names {
        let proc = &program.procs[name];
        validator.context = name.clone();
        validator.labels.clear();
        Validator::collect_labels(&proc.body, &mut validator.labels);
        let mut scope: Vec<String> = proc
            .params
            .iter()
            .map(|(sym, _)| sym.as_str().to_owned())
            .collect();
        validator.check_expr(&proc.body, &mut scope);
    }

    validator.violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerberus_ast::ctype::{Ctype, IntegerType};
    use cerberus_core::program::CoreProc;
    use cerberus_core::syntax::{Expr, MemAction, PExpr, Pattern, Polarity};

    fn program_with_main(body: Expr) -> CoreProgram {
        let mut program = CoreProgram::default();
        let name = Ident::new("main");
        program.procs.insert(
            "main".into(),
            CoreProc {
                name: name.clone(),
                params: Vec::new(),
                return_ty: Ctype::integer(IntegerType::Int),
                body,
            },
        );
        program.main = Some(name);
        program
    }

    #[test]
    fn well_formed_program_passes() {
        let body = Expr::Sseq(
            Pattern::Sym(Ident::new("x")),
            Box::new(Expr::Pure(PExpr::specified_int(1))),
            Box::new(Expr::Return(Box::new(PExpr::sym("x")))),
        );
        assert!(validate(&program_with_main(body)).is_empty());
    }

    #[test]
    fn every_violation_is_collected_not_just_the_first() {
        // Three independent problems: an unbound symbol, an unresolvable
        // call, and a store whose type operand is not a Ctype literal.
        let body = Expr::seq_all(vec![
            Expr::Pure(PExpr::sym("nowhere")),
            Expr::Ccall(Box::new(PExpr::FunctionPtr(Ident::new("missing"))), vec![]),
            Expr::Action(
                Polarity::Positive,
                MemAction::Store {
                    ty: Box::new(PExpr::Integer(4)),
                    ptr: Box::new(PExpr::NullPtr(Ctype::pointer(Ctype::integer(
                        IntegerType::Int,
                    )))),
                    value: Box::new(PExpr::specified_int(0)),
                    order: cerberus_core::syntax::MemOrder::NA,
                },
            ),
        ]);
        let violations = validate(&program_with_main(body));
        assert_eq!(violations.len(), 3, "{violations:?}");
        let text: Vec<String> = violations.iter().map(|v| v.message().to_owned()).collect();
        assert!(text.iter().any(|m| m.contains("unbound Core symbol")));
        assert!(text.iter().any(|m| m.contains("resolves to no procedure")));
        assert!(text.iter().any(|m| m.contains("store")));
    }

    #[test]
    fn run_to_a_missing_label_is_flagged() {
        let body = Expr::Run(Ident::new("ghost"));
        let violations = validate(&program_with_main(body));
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message().contains("run ghost"));
    }

    #[test]
    fn tuple_pattern_arity_mismatch_is_flagged() {
        let body = Expr::Let(
            Pattern::Tuple(vec![
                Pattern::Sym(Ident::new("a")),
                Pattern::Sym(Ident::new("b")),
                Pattern::Sym(Ident::new("c")),
            ]),
            PExpr::Tuple(vec![PExpr::Integer(1), PExpr::Integer(2)]),
            Box::new(Expr::Pure(PExpr::Unit)),
        );
        let violations = validate(&program_with_main(body));
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message().contains("arity"));
    }

    #[test]
    fn globals_and_string_literals_are_in_scope() {
        let mut program = program_with_main(Expr::Pure(PExpr::sym("g")));
        program.globals.push(cerberus_core::program::CoreGlobal {
            name: Ident::new("g"),
            ty: Ctype::integer(IntegerType::Int),
            init: Expr::Skip,
        });
        assert!(validate(&program).is_empty());
    }
}
