//! Static undefined-behaviour analysis over elaborated Core programs.
//!
//! The dynamic pipeline decides de-facto definedness by *running* a program
//! under many memory object models (§5 of the paper). This crate is the static
//! companion pass: it inspects the elaborated Core once, without executing it,
//! and reports which undefined behaviours *must* or *may* occur. Two passes:
//!
//! 1. [`validate`] — a Core well-formedness lint over every `PExpr`/`Expr`
//!    node: binding discipline, pattern arity, call-target resolution and
//!    `MemAction` operand typing. The elaborator produces well-formed Core by
//!    construction, so any violation indicates a broken producer; the pass
//!    collects *all* violations per translation unit rather than stopping at
//!    the first, mirroring the desugaring stage's multi-diagnostic reporting.
//!
//! 2. [`interp`] — a path-sensitive abstract interpreter tracking pointer
//!    provenance (an allocation-id set lattice with byte offsets), allocation
//!    lifetime (live/dead/maybe-dead) and byte-initialisation, emitting
//!    [`StaticFinding`]s that reuse the dynamic oracle's [`UbKind`] catalogue
//!    and ISO clause citations. In the default [`AnalysisMode::PathSensitive`]
//!    mode each explored path carries a constraint set over symbolic
//!    allocation bases, integer offsets and provenance predicates, decided by
//!    the [`solver`] module; infeasible paths are pruned and every finding
//!    carries a [`Witness`]. [`AnalysisMode::FlowJoin`] keeps the older
//!    join-everything behaviour as a differential baseline.
//!
//! Two corpus contracts are checked at the workspace root:
//!
//! * **soundness** (`tests/analysis_soundness.rs`): for every golden fixture
//!   on which any named memory model dynamically reports UB of kind K, this
//!   analyzer reports a Must or May finding of kind K, or the pair is on the
//!   reviewed incompleteness allowlist;
//! * **precision** (`tests/analysis_precision.rs`): every `Must` finding on a
//!   golden fixture is realised dynamically by at least one named model, or
//!   the pair is on the reviewed over-claim allowlist.

use std::collections::BTreeSet;
use std::fmt;

use cerberus_ast::diag::ConstraintViolation;
use cerberus_ast::env::ImplEnv;
use cerberus_ast::loc::Span;
use cerberus_ast::ub::UbKind;
use cerberus_core::program::CoreProgram;

pub mod interp;
pub mod solver;
pub mod validate;

/// How certain the analyzer is that a finding fires.
///
/// `Must`: on every execution path that reaches the flagged operation, the
/// operation violates the cited rule (under the memory models that enforce
/// it). `May`: the abstract state cannot exclude a violating execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FindingSeverity {
    /// The violation happens on every path reaching the operation.
    Must,
    /// The violation happens on some abstract path; the analyzer cannot prove
    /// it away.
    May,
}

impl fmt::Display for FindingSeverity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FindingSeverity::Must => "must",
            FindingSeverity::May => "may",
        })
    }
}

/// Evidence attached to a finding explaining *when* the UB fires, in terms of
/// the symbolic variables the interpreter minted for unknown run-time values
/// (allocation base addresses, unknown loads, pointer-comparison outcomes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Witness {
    /// A satisfying assignment of the path constraints under which the
    /// finding fired: one concrete layout/value choice realising the UB.
    /// Empty when the finding is unconditional (no constraints on the path).
    /// Attached to `Must` findings.
    Assignment(Vec<(String, i128)>),
    /// The residual constraint set (rendered atoms) under which the UB would
    /// fire; the solver could not produce a model or definiteness was lost at
    /// a join. Attached to `May` findings. Empty when the analyzer tracked no
    /// constraints for the path (e.g. flow-join mode).
    Residual(Vec<String>),
}

impl Witness {
    /// Whether the witness carries no information (unconditional finding or
    /// constraint-free residual).
    pub fn is_trivial(&self) -> bool {
        match self {
            Witness::Assignment(bindings) => bindings.is_empty(),
            Witness::Residual(atoms) => atoms.is_empty(),
        }
    }
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Witness::Assignment(bindings) if bindings.is_empty() => f.write_str("unconditional"),
            Witness::Assignment(bindings) => {
                let parts: Vec<String> =
                    bindings.iter().map(|(n, v)| format!("{n} = {v}")).collect();
                write!(f, "{}", parts.join(", "))
            }
            Witness::Residual(atoms) if atoms.is_empty() => f.write_str("-"),
            Witness::Residual(atoms) => write!(f, "if {}", atoms.join(" && ")),
        }
    }
}

/// One static diagnostic: an undefined behaviour the abstract interpretation
/// could not rule out, with the ISO C11 clause that makes it undefined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticFinding {
    /// The undefined behaviour, from the shared dynamic-oracle catalogue.
    pub ub: UbKind,
    /// Must (on every path) or May (on some abstract path).
    pub severity: FindingSeverity,
    /// Source span. Core carries no source locations, so this is the
    /// synthetic span; the procedure name in [`StaticFinding::proc`] anchors
    /// the finding instead.
    pub span: Span,
    /// The ISO clause (or committee document) violated.
    pub iso_clause: &'static str,
    /// The Core procedure the finding was detected in.
    pub proc: String,
    /// Human-readable explanation of what the abstract state proved.
    pub detail: String,
    /// When the UB fires: a satisfying assignment for `Must`, the residual
    /// path constraint for `May`.
    pub witness: Witness,
}

impl fmt::Display for StaticFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} in {} ({}): {}",
            self.severity,
            self.ub.core_name(),
            self.proc,
            self.iso_clause,
            self.detail
        )?;
        if !self.witness.is_trivial() {
            write!(f, " [{}]", self.witness)?;
        }
        Ok(())
    }
}

/// Which branch-handling discipline the abstract interpreter uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalysisMode {
    /// Bounded path sensitivity: branches on undecided conditions carry
    /// constraint atoms, the solver prunes infeasible arms, and findings gain
    /// witnesses. The default.
    #[default]
    PathSensitive,
    /// PR 7's join-everything flow sensitivity, kept as a differential
    /// baseline: no symbolic variables, no pruning, trivial witnesses. The
    /// refinement property (`tests/properties.rs`) checks path-sensitive
    /// results never report a UB kind this mode proves absent.
    FlowJoin,
}

/// Resource bounds for the abstract interpretation, keeping the pass total on
/// every input (including generated ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Maximum number of abstract evaluation steps across the whole program.
    pub step_budget: usize,
    /// Maximum call-inlining depth before a call is widened to an unknown
    /// result.
    pub call_depth: usize,
    /// Number of abstract iterations of a `save`/`run` loop before widening.
    pub loop_bound: usize,
    /// Branch-handling discipline (path-sensitive by default).
    pub mode: AnalysisMode,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            step_budget: 200_000,
            call_depth: 8,
            loop_bound: 3,
            mode: AnalysisMode::default(),
        }
    }
}

impl AnalysisConfig {
    /// A tight budget for property tests: still enough for every fixture, but
    /// quick to exhaust on adversarial generated programs.
    pub fn tight() -> Self {
        AnalysisConfig {
            step_budget: 20_000,
            call_depth: 4,
            loop_bound: 2,
            mode: AnalysisMode::default(),
        }
    }

    /// The same bounds with the flow-join baseline mode.
    pub fn flow_baseline(self) -> Self {
        AnalysisConfig {
            mode: AnalysisMode::FlowJoin,
            ..self
        }
    }
}

/// The combined result of the validator and the abstract interpreter.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AnalysisReport {
    /// Core well-formedness violations (all of them, not just the first).
    pub violations: Vec<ConstraintViolation>,
    /// Abstract-interpretation findings, sorted by (procedure, UB kind).
    pub findings: Vec<StaticFinding>,
    /// Number of Core procedures analyzed.
    pub procs_analyzed: usize,
    /// Abstract steps consumed.
    pub steps_used: usize,
    /// Whether the step budget ran out (the findings are then a prefix of the
    /// full analysis, still sound for everything visited).
    pub budget_exhausted: bool,
    /// Set when the interpreter pass died on an internal error; the report
    /// then carries validator results only. The analyzer is expected to never
    /// set this (see the totality property in `tests/properties.rs`).
    pub aborted: Option<String>,
    /// Path-sensitive mode: branch arms explored (flow-join mode counts every
    /// arm here too, it just never prunes).
    pub paths_explored: usize,
    /// Branch arms whose path constraints the solver proved unsatisfiable.
    pub paths_pruned: usize,
    /// Feasibility/witness queries issued to the constraint solver.
    pub solver_queries: u64,
    /// Of those, how many were answered from the solver's memo table.
    pub solver_memo_hits: u64,
}

impl AnalysisReport {
    /// Whether neither pass reported anything.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.findings.is_empty() && self.aborted.is_none()
    }

    /// The strongest severity at which `ub` is reported, if at all.
    pub fn reports(&self, ub: UbKind) -> Option<FindingSeverity> {
        self.findings
            .iter()
            .filter(|f| f.ub == ub)
            .map(|f| f.severity)
            .min()
    }

    /// The set of UB kinds reported at any severity.
    pub fn ub_kinds(&self) -> BTreeSet<UbKind> {
        self.findings.iter().map(|f| f.ub).collect()
    }
}

/// Run both passes with the default budget.
pub fn analyze(program: &CoreProgram, env: &ImplEnv) -> AnalysisReport {
    analyze_with(program, env, AnalysisConfig::default())
}

/// Run both passes under an explicit budget, with a private solver (no memo
/// sharing across calls). Total: the interpreter is step-bounded and an
/// internal panic is downgraded to [`AnalysisReport::aborted`] rather than
/// unwinding into the caller.
pub fn analyze_with(
    program: &CoreProgram,
    env: &ImplEnv,
    config: AnalysisConfig,
) -> AnalysisReport {
    let solver = solver::Solver::default();
    analyze_with_solver(program, env, config, &solver)
}

/// Run both passes against a caller-owned [`solver::Solver`], so its memo
/// table persists across translation units — subgoals shared across fixtures
/// are decided once (the `Session` in `cerberus-lang` holds one solver for
/// its whole lifetime and surfaces the hit rate in its cache stats).
pub fn analyze_with_solver(
    program: &CoreProgram,
    env: &ImplEnv,
    config: AnalysisConfig,
    solver: &solver::Solver,
) -> AnalysisReport {
    let violations = validate::validate(program);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        interp::run(program, env, config, solver)
    }));
    match outcome {
        Ok(mut report) => {
            report.violations = violations;
            report
        }
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            AnalysisReport {
                violations,
                aborted: Some(message),
                ..AnalysisReport::default()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_must_before_may() {
        assert!(FindingSeverity::Must < FindingSeverity::May);
    }

    #[test]
    fn empty_program_is_clean() {
        let program = CoreProgram::default();
        let report = analyze(&program, &ImplEnv::default());
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.procs_analyzed, 0);
    }

    #[test]
    fn finding_display_cites_the_clause() {
        let finding = StaticFinding {
            ub: UbKind::DivisionByZero,
            severity: FindingSeverity::Must,
            span: Span::synthetic(),
            iso_clause: UbKind::DivisionByZero.iso_reference(),
            proc: "main".into(),
            detail: "divisor is the constant zero".into(),
            witness: Witness::Assignment(vec![]),
        };
        let text = finding.to_string();
        assert!(text.contains("6.5.5p5"), "{text}");
        assert!(text.contains("must"), "{text}");
    }

    #[test]
    fn witness_display_renders_assignments_and_residuals() {
        let w = Witness::Assignment(vec![("base(x)".into(), 16), ("load(n)".into(), 0)]);
        assert_eq!(w.to_string(), "base(x) = 16, load(n) = 0");
        assert!(!w.is_trivial());
        let w = Witness::Assignment(vec![]);
        assert_eq!(w.to_string(), "unconditional");
        assert!(w.is_trivial());
        let w = Witness::Residual(vec!["load(n) != 0".into(), "live(a)".into()]);
        assert_eq!(w.to_string(), "if load(n) != 0 && live(a)");
        let w = Witness::Residual(vec![]);
        assert!(w.is_trivial());
    }
}
