//! Workspace-level facade for the Cerberus-rs reproduction of "Into the
//! Depths of C: Elaborating the De Facto Standards" (PLDI 2016).
//!
//! This crate exists to host the repository-level examples and integration
//! tests; the functionality lives in the member crates, re-exported here for
//! convenience:
//!
//! * [`cerberus`] — the staged Session pipeline (`parse → desugar →
//!   elaborate`), producing reusable [`cerberus::Elaborated`] artifacts that
//!   execute under any memory model, and the
//!   [`cerberus::DifferentialRunner`] for one-artifact/many-models outcome
//!   matrices;
//! * [`cerberus_memory`] — the abstract [`cerberus_memory::MemoryModel`]
//!   interface and its first implementation, the configurable
//!   [`cerberus_memory::ConcreteEngine`];
//! * [`cerberus_exec`] — the Core operational semantics and drivers, generic
//!   over the memory model;
//! * [`cerberus_litmus`] — the de facto semantic test suite;
//! * [`cerberus_gen`] — the csmith-lite differential-testing harness;
//! * [`cerberus_queue`] — the work-stealing job queue fanning (program ×
//!   model-set) jobs across a worker pool;
//! * [`cerberus_server`] — the std-only HTTP/1.1 UB-oracle service over that
//!   pool (see `docs/SERVICE.md`);
//! * [`cerberus_survey`] — the survey datasets and analysis.
//!
//! See `ARCHITECTURE.md` at the repository root for the crate map.

pub use cerberus;
pub use cerberus_ail;
pub use cerberus_ast;
pub use cerberus_conc;
pub use cerberus_core;
pub use cerberus_elab;
pub use cerberus_exec;
pub use cerberus_gen;
pub use cerberus_litmus;
pub use cerberus_memory;
pub use cerberus_parser;
pub use cerberus_queue;
pub use cerberus_server;
pub use cerberus_survey;
