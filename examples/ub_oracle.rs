//! Using Cerberus-rs as a test oracle: exhaustively enumerate the allowed
//! behaviours of small test programs, including detection of undefined
//! behaviour on *any* allowed execution path (§5.4 of the paper).
//!
//! Run with: `cargo run --example ub_oracle`

use cerberus::pipeline::{Config, Session};

/// Unspecified evaluation order: the two calls may happen in either order.
const ORDER: &str = r#"
int trace = 0;
int f(void) { trace = trace * 10 + 1; return 0; }
int g(void) { trace = trace * 10 + 2; return 0; }
int observe(int a, int b) { return trace; }
int main(void) { return observe(f(), g()); }
"#;

/// An unsequenced race: undefined behaviour regardless of the schedule.
const RACE: &str = "int main(void) { int i = 0; i = i++ + 1; return i; }";

/// Arithmetic undefined behaviour that only some inputs reach.
const SHIFT: &str = r#"
int shift(int amount) { return 1 << amount; }
int main(void) { return shift(31) != 0; }
"#;

fn explore(title: &str, source: &str) {
    println!("== {title} ==");
    let session = Session::new(Config::default().exhaustive(128));
    let outcome = session.run_source(source).expect("well-formed program");
    for (i, o) in outcome.outcomes.iter().enumerate() {
        println!("  behaviour {}: {}", i + 1, o.result);
    }
    if outcome.any_undef() {
        println!("  => the program has undefined behaviour on some allowed execution");
    }
    println!();
}

fn main() {
    explore("unspecified argument evaluation order", ORDER);
    explore("unsequenced race (i = i++ + 1)", RACE);
    explore("left shift close to the width limit", SHIFT);
}
