//! The §6 validation workflow in miniature: generate random well-defined C
//! programs, run them through the Cerberus-rs pipeline, and compare against
//! the independent reference evaluator (the stand-in for the paper's GCC
//! oracle).
//!
//! Run with: `cargo run --example csmith_differential`

use cerberus_gen::{diff_one, generate, reference_eval, to_c_source, GenConfig};

fn main() {
    // Show one generated program in full.
    let sample = generate(2, GenConfig::small());
    println!("== generated program (seed 2) ==\n{}", to_c_source(&sample));
    let reference = reference_eval(&sample);
    println!(
        "reference oracle: checksum={} exit={}\n",
        reference.checksum, reference.exit
    );

    // Differentially test a batch.
    println!("== differential batch (30 small programs) ==");
    let mut agree = 0;
    for seed in 0..30 {
        let program = generate(seed, GenConfig::small());
        let outcome = diff_one(&program, 2_000_000);
        if outcome == cerberus_gen::DiffOutcome::Agree {
            agree += 1;
        } else {
            println!("  seed {seed}: {outcome:?}");
        }
    }
    println!("  {agree}/30 programs agree with the reference oracle");
}
