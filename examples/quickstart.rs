//! Quickstart: run a C program through the Cerberus-rs pipeline under the
//! candidate de facto memory object model and print what happened.
//!
//! Run with: `cargo run --example quickstart`

use cerberus::pipeline::{Config, Session};

const PROGRAM: &str = r#"
#include <stdio.h>

int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}

int main(void) {
    for (int i = 0; i < 10; i++) {
        printf("fib(%d)=%d\n", i, fib(i));
    }
    return fib(10);
}
"#;

fn main() {
    let session = Session::new(Config::default());
    let outcome = session
        .run_source(PROGRAM)
        .expect("the program is well-formed");
    let first = &outcome.outcomes[0];
    print!("{}", first.stdout);
    println!("--\nexecution finished with: {}", first.result);
}
