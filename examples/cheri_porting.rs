//! CHERI C porting assistant: reproduce the §4 findings — how the CHERI
//! capability semantics differs from the mainstream de facto semantics — and
//! run the de facto litmus suite under the CHERI memory model.
//!
//! Run with: `cargo run --example cheri_porting`

use cerberus_litmus::{catalogue, run_under};
use cerberus_memory::cheri::{
    eq_by_address, eq_exact, uintptr_bitand_address_semantics, uintptr_bitand_offset_semantics,
    Capability,
};
use cerberus_memory::config::ModelConfig;
use cerberus_memory::value::Provenance;

fn main() {
    println!("== finding 1: pointer equality needs to compare metadata ==");
    let one_past_x = Capability {
        base: 0x1_0000,
        length: 4,
        offset: 4,
        tag: true,
        prov: Provenance::Alloc(1),
    };
    let y = Capability {
        base: 0x1_0004,
        length: 4,
        offset: 0,
        tag: true,
        prov: Provenance::Alloc(2),
    };
    println!(
        "  by address: {}   exact-equals: {}",
        eq_by_address(&one_past_x, &y),
        eq_exact(&one_past_x, &y)
    );

    println!("\n== finding 2: (i & 3u) on a uintptr_t capability ==");
    let i = Capability {
        base: 0x1_0000,
        length: 64,
        offset: 8,
        tag: true,
        prov: Provenance::Alloc(1),
    };
    println!(
        "  expected (address) semantics: {}   CHERI offset semantics: {}",
        uintptr_bitand_address_semantics(&i, 3),
        uintptr_bitand_offset_semantics(&i, 3)
    );
    println!("  => the defensive alignment check `(i & 3u) == 0u` fails even though the address is aligned");

    println!("\n== the de facto litmus suite under the CHERI memory model ==");
    let model = ModelConfig::cheri();
    for test in catalogue() {
        let outcome = run_under(&test, &model);
        let first = &outcome.outcomes[0];
        println!("  {:<38} {}", test.name, first.result);
    }
}
