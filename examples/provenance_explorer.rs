//! Provenance explorer: run the paper's §2.1 DR260 example (and two related
//! idioms) under several memory object models and show how the verdict
//! changes — concrete, candidate de facto, GCC-like, strict ISO, and the
//! CompCert-style block model.
//!
//! Run with: `cargo run --example provenance_explorer`

use cerberus::pipeline::run_with_model;
use cerberus_memory::config::ModelConfig;

const DR260: &str = r#"
#include <stdio.h>
#include <string.h>
int x = 1, y = 2;
int main() {
  int *p = &x + 1;
  int *q = &y;
  if (memcmp(&p, &q, sizeof(p)) == 0) {
    *p = 11;
    printf("x=%d y=%d *p=%d *q=%d\n", x, y, *p, *q);
  }
  return 0;
}
"#;

const ROUND_TRIP: &str = r#"
int main(void) {
  int x = 7;
  unsigned long a = (unsigned long)&x;
  int *p = (int*)a;
  return *p;
}
"#;

const RELATIONAL: &str = r#"
int a, b;
int main(void) { return &a < &b || &a > &b; }
"#;

fn show(title: &str, source: &str) {
    println!("== {title} ==");
    for model in [
        ModelConfig::concrete(),
        ModelConfig::de_facto(),
        ModelConfig::gcc_like(),
        ModelConfig::strict_iso(),
        ModelConfig::block(),
    ] {
        let outcome = run_with_model(source, model.clone()).expect("well-formed program");
        let first = &outcome.outcomes[0];
        let stdout = if first.stdout.is_empty() {
            String::new()
        } else {
            format!("   [prints {:?}]", first.stdout)
        };
        println!("  {:<12} {}{}", model.name, first.result, stdout);
    }
    println!();
}

fn main() {
    show("DR260 provenance example (provenance_basic_global_xy.c)", DR260);
    show("pointer/integer round trip (Q5)", ROUND_TRIP);
    show("relational comparison of pointers to different objects (Q25)", RELATIONAL);
}
