//! Provenance explorer: run the paper's §2.1 DR260 example (and two related
//! idioms) under several memory object models and show how the verdict
//! changes — concrete, candidate de facto, GCC-like, strict ISO, and the
//! CompCert-style block model.
//!
//! Each program is elaborated **once** and the resulting artifact is executed
//! under every model by a `DifferentialRunner` — the Session-API shape of
//! the paper's §3 comparison.
//!
//! Run with: `cargo run --example provenance_explorer`

use cerberus::pipeline::Session;
use cerberus::DifferentialRunner;
use cerberus_memory::config::ModelConfig;

const DR260: &str = r#"
#include <stdio.h>
#include <string.h>
int x = 1, y = 2;
int main() {
  int *p = &x + 1;
  int *q = &y;
  if (memcmp(&p, &q, sizeof(p)) == 0) {
    *p = 11;
    printf("x=%d y=%d *p=%d *q=%d\n", x, y, *p, *q);
  }
  return 0;
}
"#;

const ROUND_TRIP: &str = r#"
int main(void) {
  int x = 7;
  unsigned long a = (unsigned long)&x;
  int *p = (int*)a;
  return *p;
}
"#;

const RELATIONAL: &str = r#"
int a, b;
int main(void) { return &a < &b || &a > &b; }
"#;

fn show(title: &str, source: &str) {
    println!("== {title} ==");
    // One front-end pass; six executions off the shared artifact (the last
    // row runs the symbolic provenance engine, not the concrete one).
    let program = Session::default()
        .elaborate(source)
        .expect("well-formed program");
    let matrix = DifferentialRunner::new(vec![
        ModelConfig::concrete(),
        ModelConfig::de_facto(),
        ModelConfig::gcc_like(),
        ModelConfig::strict_iso(),
        ModelConfig::block(),
        ModelConfig::symbolic(),
    ])
    .run(&program);
    for row in matrix.rows() {
        let first = &row.outcome.outcomes[0];
        let stdout = if first.stdout.is_empty() {
            String::new()
        } else {
            format!("   [prints {:?}]", first.stdout)
        };
        println!("  {:<12} {}{}", row.model, first.result, stdout);
    }
    let classes = matrix.agreement_classes();
    println!("  -> {} agreement class(es):", classes.len());
    for class in classes {
        println!("     {{{}}}", class.models.join(", "));
    }
    println!();
}

fn main() {
    show(
        "DR260 provenance example (provenance_basic_global_xy.c)",
        DR260,
    );
    show("pointer/integer round trip (Q5)", ROUND_TRIP);
    show(
        "relational comparison of pointers to different objects (Q25)",
        RELATIONAL,
    );
}
